package panda

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"panda/internal/geom"
	"panda/internal/proto"
)

// ErrClientClosed is returned by Client calls after Close.
var ErrClientClosed = errors.New("panda: client closed")

// errConnLost marks transport-level failures — broken connections, failed
// sends, malformed frames. Calls failing with it are safe to retry on a
// fresh connection (KNN/radius/stats are pure reads); semantic server
// errors (KindError responses) never wrap it.
var errConnLost = errors.New("panda: connection lost")

// ErrOverloaded marks a query the server refused at its admission limit
// (Config.MaxInFlight) instead of queueing it. The connection stays healthy
// and the dataset unchanged — the right reaction is to back off and retry,
// which retrying clients do when RetryPolicy.RetryOverloaded is set. Test
// with errors.Is or IsOverloaded.
var ErrOverloaded = errors.New("panda: server overloaded")

// IsOverloaded reports whether err means the server shed the request at its
// admission limit rather than failing it.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// errNonFiniteQuery rejects NaN/±Inf query inputs client-side; the server
// enforces the same rule at its decode boundary (semantic KindError, the
// connection stays usable).
var errNonFiniteQuery = errors.New("panda: non-finite query input (NaN/±Inf coordinates or radius)")

// Client is a connection to a panda serving process (internal/server,
// started by cmd/panda-serve or server.New). It is safe for concurrent use:
// calls from many goroutines are pipelined over the single connection with
// per-request ids, so N goroutines sharing one Client keep N requests in
// flight — which is exactly what the server's dynamic micro-batcher
// coalesces into batched engine calls.
//
// Clients dialed with DialRetry/DialClusterRetry additionally reconnect and
// retry idempotent calls after transport failures; see RetryPolicy.
type Client struct {
	id      proto.DatasetID // dataset the connection bound to at handshake
	dataset string          // requested selector ("" = server default); redials reuse it
	addrs   []string        // redial targets, preference order
	retry   RetryPolicy     // zero value: no retries, no reconnect

	wmu  sync.Mutex // serializes request writes
	wbuf []byte

	rmu sync.Mutex // serializes reconnect attempts

	mu      sync.Mutex
	nc      net.Conn // current connection; swapped by reconnect
	closed  bool     // explicit Close: reconnect refuses to resurrect
	nextID  uint64   // never reset, so ids stay unique across reconnects
	rng     uint64   // trace-id generator state (xorshift64, lazily seeded)
	pending map[uint64]chan clientResult
	err     error // sticky per connection; cleared by a successful reconnect
}

// newTraceID returns a fresh nonzero trace id.
func (c *Client) newTraceID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.rng == 0 {
			c.rng = uint64(time.Now().UnixNano()) | 1
		}
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		if c.rng != 0 {
			return c.rng
		}
	}
}

// clientResult is one decoded response handed to a waiter.
type clientResult struct {
	flat    []Neighbor
	offsets []int32
	stats   *ServerStats
	spans   []TraceSpan
	err     error
}

// TraceSpan is one stage of a traced query's latency decomposition, as
// recorded by a serving rank (see Client.KNNTraced). Start and Dur are
// nanoseconds; Start is relative to the recording rank's own arrival stamp,
// so spans from different ranks share a scale but not an epoch. A negative
// Start marks the decode stage, which runs before the arrival stamp.
type TraceSpan struct {
	// Stage names the pipeline stage: "decode", "queue_wait", "linger",
	// "engine", "remote_exchange", or "response_write".
	Stage string
	// Rank is the cluster rank that recorded the span (-1 on a single-node
	// server). A traced query routed through the cluster carries spans from
	// every rank that worked on it.
	Rank int32
	// Start is the stage's start offset in nanoseconds from the recording
	// rank's arrival stamp.
	Start int64
	// Dur is the stage's duration in nanoseconds.
	Dur int64
}

// ServerStats are the serving counters reported by a panda server (see
// internal/server.Stats; in a cluster each rank reports its own).
type ServerStats struct {
	// Queries answered since the server started (batch requests count each
	// contained query).
	Queries int64
	// Batches is the number of coalesced dispatch rounds the server ran.
	Batches int64
	// MeanBatchSize is Queries/Batches — the achieved micro-batching
	// factor (0 before the first batch).
	MeanBatchSize float64
	// ActiveConns is the server's current open-connection count.
	ActiveConns int
	// PeerFailures counts the rank's failed peer calls (transport level).
	PeerFailures int64
	// Failovers counts shard queries the rank answered via a replica
	// because the shard's primary was unreachable.
	Failovers int64
	// Redials counts the rank's peer reconnect attempts.
	Redials int64
	// ReplicationBytes counts snapshot bytes the rank has streamed to
	// re-replicating or joining peers.
	ReplicationBytes int64
	// Shed counts requests the rank refused with an overload error at its
	// admission limit (server Config.MaxInFlight).
	Shed int64
}

// DialTimeout bounds connection establishment and the handshake in Dial.
const clientDialTimeout = 10 * time.Second

// DatasetID identifies the dataset a client is bound to: the server-side
// tenant name plus the shape and content fingerprint of the tree behind it
// (from the protocol welcome). Two servers answer a query stream
// identically only if their DatasetIDs compare equal; the reconnect logic
// of retrying clients enforces exactly that.
type DatasetID struct {
	// Name is the canonical tenant name on the server ("default" for a
	// single-tenant server).
	Name string
	// Dims is the dimensionality of the served tree; every query must carry
	// exactly Dims coordinates.
	Dims int
	// Points is the number of indexed points.
	Points int64
	// Fingerprint is the 64-bit content hash of the served tree (see
	// Tree.Fingerprint). Cluster servers report a cluster-wide value shared
	// by every rank.
	Fingerprint uint64
}

func (id DatasetID) String() string { return protoID(id).String() }

func protoID(id DatasetID) proto.DatasetID {
	return proto.DatasetID{Name: id.Name, Dims: id.Dims, Points: id.Points, Fingerprint: id.Fingerprint}
}

func publicID(id proto.DatasetID) DatasetID {
	return DatasetID{Name: id.Name, Dims: id.Dims, Points: id.Points, Fingerprint: id.Fingerprint}
}

// dialConn establishes one connection and runs the handshake, requesting
// dataset ("" = the server's default tenant).
func dialConn(addr, dataset string) (net.Conn, proto.DatasetID, error) {
	nc, err := net.DialTimeout("tcp", addr, clientDialTimeout)
	if err != nil {
		return nil, proto.DatasetID{}, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	nc.SetDeadline(time.Now().Add(clientDialTimeout))
	if _, err := nc.Write(proto.AppendHello(nil, dataset)); err != nil {
		nc.Close()
		return nil, proto.DatasetID{}, fmt.Errorf("panda: handshake: %w", err)
	}
	id, err := proto.ReadWelcome(nc)
	if err != nil {
		nc.Close()
		return nil, proto.DatasetID{}, fmt.Errorf("panda: handshake: %w", err)
	}
	nc.SetDeadline(time.Time{})
	return nc, id, nil
}

// dialAny tries each address in order and returns the first that answers
// the handshake.
func dialAny(addrs []string, dataset string) (net.Conn, proto.DatasetID, error) {
	var errs []error
	for _, addr := range addrs {
		nc, id, err := dialConn(addr, dataset)
		if err == nil {
			return nc, id, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", addr, err))
	}
	return nil, proto.DatasetID{}, errors.Join(errs...)
}

// newClient wraps an established connection.
func newClient(nc net.Conn, id proto.DatasetID, dataset string, addrs []string, retry RetryPolicy) *Client {
	c := &Client{
		nc:      nc,
		id:      id,
		dataset: dataset,
		addrs:   addrs,
		retry:   retry,
		pending: map[uint64]chan clientResult{},
	}
	go c.readLoop(nc)
	return c
}

// Dial connects to a panda server at addr and performs the protocol
// handshake, binding to the server's default dataset. The returned client
// does not retry; see DialRetry. Multi-tenant servers: see DialDataset.
func Dial(addr string) (*Client, error) { return DialDataset(addr, "") }

// DialDataset connects to a panda server and binds to the named dataset
// (one of the tenants the server registered; "" means the server's default
// tenant). A server that does not serve the dataset rejects the handshake
// with an error naming it.
func DialDataset(addr, dataset string) (*Client, error) {
	nc, id, err := dialConn(addr, dataset)
	if err != nil {
		return nil, err
	}
	return newClient(nc, id, dataset, []string{addr}, RetryPolicy{}), nil
}

// DialCluster connects to a sharded panda cluster (panda-serve -cluster):
// addrs lists the serving address of each rank, in any order. Every rank
// answers every query — a query landing on a non-owner rank is forwarded to
// its owner inside the cluster — so DialCluster simply connects to the
// first reachable rank and returns a normal Client. Ranks earlier in addrs
// are preferred; pass a rotated slice to spread clients across ranks.
func DialCluster(addrs []string) (*Client, error) {
	return DialClusterDataset(addrs, "")
}

// DialClusterDataset is DialCluster with a dataset selector (see
// DialDataset).
func DialClusterDataset(addrs []string, dataset string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("panda: DialCluster needs at least one address")
	}
	nc, id, err := dialAny(addrs, dataset)
	if err != nil {
		return nil, fmt.Errorf("panda: no cluster rank reachable: %w", err)
	}
	return newClient(nc, id, dataset, addrs, RetryPolicy{}), nil
}

// Dims returns the dimensionality of the served tree; every query must
// carry exactly Dims coordinates.
func (c *Client) Dims() int { return c.id.Dims }

// Len returns the number of points indexed by the served tree.
func (c *Client) Len() int64 { return c.id.Points }

// DatasetID returns the canonical identity of the dataset this client is
// bound to, as reported by the server's welcome. Reconnects only ever
// accept a server reporting this exact id.
func (c *Client) DatasetID() DatasetID { return publicID(c.id) }

// Close tears down the connection. In-flight calls return ErrClientClosed,
// and a retrying client stops reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	nc := c.nc
	if c.err == nil {
		c.err = ErrClientClosed
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- clientResult{err: ErrClientClosed}
	}
	c.mu.Unlock()
	return nc.Close()
}

// connFailed marks the connection nc dead and releases every waiter. It is
// a no-op if nc is no longer the client's current connection (a stale
// reader or writer reporting a failure the reconnect already replaced).
func (c *Client) connFailed(nc net.Conn, err error) {
	c.mu.Lock()
	if c.nc != nc {
		c.mu.Unlock()
		return
	}
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- clientResult{err: c.err}
	}
	c.mu.Unlock()
	nc.Close()
}

// readLoop is the single response reader for one connection: it decodes
// frames and routes them to waiters by request id. A reconnect starts a
// fresh readLoop for the new connection; this one exits on its conn's
// first error.
func (c *Client) readLoop(nc net.Conn) {
	var buf []byte
	for {
		payload, err := proto.ReadFrame(nc, buf)
		if err != nil {
			c.connFailed(nc, fmt.Errorf("%w: %w", errConnLost, err))
			return
		}
		buf = payload
		var resp proto.Response
		if err := proto.ConsumeResponse(payload, &resp); err != nil {
			c.connFailed(nc, fmt.Errorf("%w: malformed response: %w", errConnLost, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch == nil {
			continue // response for an abandoned id; drop
		}
		res := clientResult{}
		switch resp.Kind {
		case proto.KindError:
			// Overload refusals keep their sentinel across cluster
			// forwarding: a non-owner rank wraps the owner's message
			// ("forward shard N...: peer: overloaded, retry"), so match by
			// substring, not equality.
			if strings.Contains(resp.Err, proto.OverloadedMsg) {
				res.err = fmt.Errorf("%w: server: %s", ErrOverloaded, resp.Err)
			} else {
				res.err = fmt.Errorf("panda: server: %s", resp.Err)
			}
		case proto.KindStatsResult:
			st := &ServerStats{
				Queries:          int64(resp.Stats.Queries),
				Batches:          int64(resp.Stats.Batches),
				ActiveConns:      int(resp.Stats.ActiveConns),
				PeerFailures:     int64(resp.Stats.PeerFailures),
				Failovers:        int64(resp.Stats.Failovers),
				Redials:          int64(resp.Stats.Redials),
				ReplicationBytes: int64(resp.Stats.ReplicationBytes),
				Shed:             int64(resp.Stats.Shed),
			}
			if st.Batches > 0 {
				st.MeanBatchSize = float64(st.Queries) / float64(st.Batches)
			}
			res.stats = st
		default:
			// Copy out of the decode scratch: the waiter owns its result.
			res.flat = append([]Neighbor(nil), resp.Flat...)
			res.offsets = append([]int32(nil), resp.Offsets...)
			if len(resp.Spans) > 0 {
				res.spans = make([]TraceSpan, len(resp.Spans))
				for i, sp := range resp.Spans {
					res.spans[i] = TraceSpan{Stage: proto.StageName(sp.Stage), Rank: sp.Rank, Start: sp.Start, Dur: sp.Dur}
				}
			}
		}
		ch <- res
	}
}

// register allocates a request id and its result channel, returning the
// connection the request must be written to.
func (c *Client) register() (uint64, chan clientResult, net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, nil, c.err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan clientResult, 1)
	c.pending[id] = ch
	return id, ch, c.nc, nil
}

// send frames and writes one encoded request payload to nc.
func (c *Client) send(nc net.Conn, encode func(b []byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = proto.BeginFrame(c.wbuf[:0])
	c.wbuf = encode(c.wbuf)
	if err := proto.FinishFrame(c.wbuf, 0); err != nil {
		return err
	}
	_, err := nc.Write(c.wbuf)
	return err
}

// call issues one request on the current connection and waits for its
// response (no retries; see callRetry).
func (c *Client) call(encode func(b []byte, id uint64) []byte) (clientResult, error) {
	id, ch, nc, err := c.register()
	if err != nil {
		return clientResult{}, err
	}
	if err := c.send(nc, func(b []byte) []byte { return encode(b, id) }); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// The request never reached the server; flag the connection so the
		// next attempt (and other in-flight callers) redial instead of
		// writing into a broken pipe.
		err = fmt.Errorf("%w: send: %w", errConnLost, err)
		c.connFailed(nc, err)
		return clientResult{}, err
	}
	res := <-ch
	return res, res.err
}

// KNN returns the k nearest neighbors of q, exactly as Tree.KNN would.
func (c *Client) KNN(q []float32, k int) ([]Neighbor, error) {
	if len(q) != c.id.Dims {
		return nil, fmt.Errorf("panda: query has %d coords, server tree has %d dims", len(q), c.id.Dims)
	}
	if !geom.AllFinite(q) {
		return nil, errNonFiniteQuery
	}
	if k < 1 || k > proto.MaxK {
		return nil, fmt.Errorf("panda: k %d out of range [1, %d]", k, proto.MaxK)
	}
	res, err := c.callRetry(func(b []byte, id uint64) []byte {
		return proto.AppendKNNRequest(b, id, k, q, c.id.Dims)
	})
	if err != nil {
		return nil, err
	}
	return res.flat, nil
}

// KNNTraced is KNN with per-stage latency tracing: the server times each
// pipeline stage the query passes through (queue wait, batching linger,
// engine search, cluster remote exchange, response write) and returns the
// spans alongside the neighbors. A query routed through a cluster carries
// spans from every rank that worked on it, tagged with the recording rank.
// The same trace is also captured in the server's /debug/traces ring.
// Tracing adds a 10-byte trailer to the request and the span list to the
// response; the result is otherwise identical to KNN.
func (c *Client) KNNTraced(q []float32, k int) ([]Neighbor, []TraceSpan, error) {
	if len(q) != c.id.Dims {
		return nil, nil, fmt.Errorf("panda: query has %d coords, server tree has %d dims", len(q), c.id.Dims)
	}
	if !geom.AllFinite(q) {
		return nil, nil, errNonFiniteQuery
	}
	if k < 1 || k > proto.MaxK {
		return nil, nil, fmt.Errorf("panda: k %d out of range [1, %d]", k, proto.MaxK)
	}
	traceID := c.newTraceID()
	res, err := c.callRetry(func(b []byte, id uint64) []byte {
		return proto.AppendTraceRequest(proto.AppendKNNRequest(b, id, k, q, c.id.Dims), traceID)
	})
	if err != nil {
		return nil, nil, err
	}
	return res.flat, res.spans, nil
}

// KNNBatch answers len(queries)/Dims row-major queries in one request;
// result i holds the neighbors of query i (all slices view one flat backing
// array, as in Tree.KNNBatch).
func (c *Client) KNNBatch(queries []float32, k int) ([][]Neighbor, error) {
	if c.id.Dims == 0 || len(queries) == 0 || len(queries)%c.id.Dims != 0 {
		return nil, fmt.Errorf("panda: query buffer of %d floats is not a positive multiple of dims %d", len(queries), c.id.Dims)
	}
	if !geom.AllFinite(queries) {
		return nil, errNonFiniteQuery
	}
	if k < 1 || k > proto.MaxK {
		return nil, fmt.Errorf("panda: k %d out of range [1, %d]", k, proto.MaxK)
	}
	if nq := len(queries) / c.id.Dims; int64(nq)*int64(k) > proto.MaxResultNeighbors {
		return nil, fmt.Errorf("panda: %d queries × k=%d exceeds the %d-neighbor response cap; split the batch",
			nq, k, proto.MaxResultNeighbors)
	}
	res, err := c.callRetry(func(b []byte, id uint64) []byte {
		return proto.AppendKNNRequest(b, id, k, queries, c.id.Dims)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(res.offsets)-1)
	for i := range out {
		out[i] = res.flat[res.offsets[i]:res.offsets[i+1]:res.offsets[i+1]]
	}
	return out, nil
}

// Stats returns the server's serving counters (queries answered, dispatch
// batches, achieved batching factor, open connections, robustness
// counters). Against a cluster rank, the counters are that rank's own.
func (c *Client) Stats() (ServerStats, error) {
	res, err := c.callRetry(func(b []byte, id uint64) []byte {
		return proto.AppendStatsRequest(b, id)
	})
	if err != nil {
		return ServerStats{}, err
	}
	if res.stats == nil {
		return ServerStats{}, fmt.Errorf("panda: server answered a stats request with a non-stats response")
	}
	return *res.stats, nil
}

// RadiusSearch returns every indexed point with squared distance < r2 from
// q, exactly as Tree.RadiusSearch would.
func (c *Client) RadiusSearch(q []float32, r2 float32) ([]Neighbor, error) {
	if len(q) != c.id.Dims {
		return nil, fmt.Errorf("panda: query has %d coords, server tree has %d dims", len(q), c.id.Dims)
	}
	if !geom.AllFinite(q) || !geom.Finite(r2) {
		return nil, errNonFiniteQuery
	}
	res, err := c.callRetry(func(b []byte, id uint64) []byte {
		return proto.AppendRadiusRequest(b, id, r2, q)
	})
	if err != nil {
		return nil, err
	}
	return res.flat, nil
}
