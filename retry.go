// Client-side fault tolerance: retrying dials and transparent
// reconnect-and-retry for idempotent calls. KNN, radius, and stats requests
// are pure reads, so replaying one after a transport failure cannot
// double-apply anything — the only care needed is distinguishing transport
// failures (retry) from semantic server errors (return immediately).
package panda

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"panda/internal/proto"
)

// RetryPolicy controls dial retries and idempotent-call retries for clients
// created by DialRetry/DialClusterRetry. The zero value disables retrying
// entirely (one attempt, no reconnect).
type RetryPolicy struct {
	// Attempts is the total number of tries per operation (the first try
	// included). Values below 1 mean 1.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// retry with ±50% jitter. Defaults to 50ms when Attempts > 1.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s when Attempts > 1.
	MaxDelay time.Duration
	// RetryOverloaded also retries (with the same backoff, but without
	// reconnecting — the connection is healthy) queries the server refused
	// at its admission limit (ErrOverloaded). Off, overload errors surface
	// immediately so the caller can shed load its own way.
	RetryOverloaded bool
}

// DefaultRetry suits most serving clients: a handful of attempts spread
// over a few seconds, long enough to ride out a cluster failover window or
// a transient overload spike.
var DefaultRetry = RetryPolicy{Attempts: 6, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, RetryOverloaded: true}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the jittered exponential delay before retry number
// attempt (0-based): BaseDelay·2^attempt, capped at MaxDelay, ±50% jitter.
// The jitter keeps a fleet of clients that lost the same rank from
// redialing in lockstep.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// DialRetry is Dial with retries: up to policy.Attempts dial attempts with
// jittered exponential backoff, and the returned client reconnects and
// retries idempotent calls (KNN, KNNBatch, RadiusSearch, Stats) after
// transport failures under the same policy.
func DialRetry(addr string, policy RetryPolicy) (*Client, error) {
	return dialRetry([]string{addr}, "", policy)
}

// DialDatasetRetry is DialDataset with retries (see DialRetry).
func DialDatasetRetry(addr, dataset string, policy RetryPolicy) (*Client, error) {
	return dialRetry([]string{addr}, dataset, policy)
}

// DialClusterRetry is DialCluster with retries. Reconnects may land on any
// listed rank, so a client survives the loss of the rank it was talking to
// as long as one rank keeps serving — with shard replication on the server
// side, answers stay bit-identical across the switch.
func DialClusterRetry(addrs []string, policy RetryPolicy) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("panda: DialClusterRetry needs at least one address")
	}
	return dialRetry(addrs, "", policy)
}

// DialClusterDatasetRetry is DialClusterDataset with retries (see
// DialClusterRetry).
func DialClusterDatasetRetry(addrs []string, dataset string, policy RetryPolicy) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("panda: DialClusterDatasetRetry needs at least one address")
	}
	return dialRetry(addrs, dataset, policy)
}

func dialRetry(addrs []string, dataset string, policy RetryPolicy) (*Client, error) {
	policy = policy.withDefaults()
	var last error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(policy.backoff(attempt - 1))
		}
		nc, id, err := dialAny(addrs, dataset)
		if err == nil {
			return newClient(nc, id, dataset, addrs, policy), nil
		}
		last = err
	}
	return nil, fmt.Errorf("panda: dial failed after %d attempts: %w", policy.Attempts, last)
}

// retryable reports whether err is worth another attempt under the
// client's policy, and whether that attempt needs a fresh connection first.
func (c *Client) retryable(err error) (retry, redial bool) {
	if errors.Is(err, errConnLost) {
		return true, true
	}
	if c.retry.RetryOverloaded && errors.Is(err, ErrOverloaded) {
		return true, false // the connection is healthy; just back off
	}
	return false, false
}

// callRetry issues an idempotent request, reconnecting and retrying on
// transport failures — and, when the policy opts in, backing off and
// retrying overload refusals on the same connection — per the client's
// policy. Semantic errors (the server answered KindError) and explicit
// Close return immediately; exhausted retries surface the attempt count and
// the last failure.
func (c *Client) callRetry(encode func(b []byte, id uint64) []byte) (clientResult, error) {
	res, err := c.call(encode)
	retry, redial := c.retryable(err)
	if err == nil || c.retry.Attempts <= 1 || !retry {
		return res, err
	}
	last := err
	for attempt := 1; attempt < c.retry.Attempts; attempt++ {
		time.Sleep(c.retry.backoff(attempt - 1))
		if redial {
			if rerr := c.reconnect(); rerr != nil {
				if errors.Is(rerr, ErrClientClosed) {
					return clientResult{}, rerr
				}
				last = rerr
				continue // the next backoff may find a revived rank
			}
		}
		res, err = c.call(encode)
		if retry, redial = c.retryable(err); err == nil || !retry {
			return res, err
		}
		last = err
	}
	return clientResult{}, fmt.Errorf("panda: giving up after %d attempts: %w", c.retry.Attempts, last)
}

// dialValidated tries each address individually and returns the first whose
// welcome reports exactly the dataset id the client first bound to — name,
// dims, point count, and content fingerprint — so a reconnect can never
// silently switch a client onto a different dataset. The fingerprint is
// what closes the old (dims, points) validation hole: two distinct datasets
// of identical shape — an address list where one rank was restarted serving
// another snapshot, or a stale DNS entry now pointing at an unrelated panda
// server — hash differently and are refused. Addresses that answer with a
// mismatched id are closed and skipped, keeping later correct addresses
// reachable. All failures wrap errConnLost so the retry loop keeps looking
// for a revived correct rank until attempts exhaust.
func dialValidated(addrs []string, dataset string, want proto.DatasetID) (net.Conn, error) {
	var errs []error
	for _, addr := range addrs {
		nc, got, err := dialConn(addr, dataset)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		if got != want {
			nc.Close()
			errs = append(errs, fmt.Errorf("%s: serves a different dataset (%v, want %v)", addr, got, want))
			continue
		}
		return nc, nil
	}
	return nil, fmt.Errorf("%w: redial: %w", errConnLost, errors.Join(errs...))
}

// reconnect replaces a failed connection, trying every known address and
// accepting only one that serves the exact dataset the client first
// connected to (matching dataset id, content fingerprint included —
// anything else would silently change query answers mid-session). It is a
// no-op when another goroutine already reconnected (many callers hit the
// same dead connection at once; only one redial should happen).
func (c *Client) reconnect() error {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	if c.err == nil {
		c.mu.Unlock()
		return nil // already healthy again
	}
	c.mu.Unlock()
	nc, err := dialValidated(c.addrs, c.dataset, c.id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return ErrClientClosed
	}
	c.nc = nc
	c.err = nil
	c.mu.Unlock()
	go c.readLoop(nc)
	return nil
}
