package panda

import "panda/internal/data"

// GenerateDataset produces one of the deterministic synthetic datasets used
// throughout the reproduction (see DESIGN.md §1 for how each mirrors the
// paper's science data):
//
//	"uniform"  3-D uniform control
//	"gaussian" 3-D Gaussian control
//	"cosmo"    3-D gravitationally clustered (halos + filaments + voids)
//	"plasma"   3-D reconnection current sheet + flux ropes
//	"dayabay"  10-D detector records, 3 labeled classes, heavy co-location
//	"sdss10"   10-D correlated photometric magnitudes (psf_mod_mag)
//	"sdss15"   15-D correlated photometric magnitudes (all_mag)
//
// It returns the row-major coordinates, the dimensionality, and class
// labels (nil for unlabeled datasets).
func GenerateDataset(name string, n int, seed uint64) (coords []float32, dims int, labels []uint8, err error) {
	d, err := data.ByName(name, n, seed)
	if err != nil {
		return nil, 0, nil, err
	}
	return d.Points.Coords, d.Points.Dims, d.Labels, nil
}
