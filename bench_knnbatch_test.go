package panda

// BenchmarkKNNBatch measures steady-state batched query throughput on the
// paper's two headline shapes: 3-D cosmology particles (§V-A) and 10-D Daya
// Bay detector records (§V-C), both at k=5. Reported per query. The
// single-thread runs are the acceptance gauge for the zero-allocation
// batched engine; the threaded runs exercise the chunked dynamic scheduler.

import (
	"testing"

	"panda/internal/data"
)

func benchKNNBatch(b *testing.B, gen string, n, nq, k, threads int) {
	d, err := data.ByName(gen, n, 2016)
	if err != nil {
		b.Fatal(err)
	}
	qd, err := data.ByName(gen, nq, 2017)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := Build(d.Points.Coords, d.Points.Dims, nil, &BuildOptions{Threads: threads})
	if err != nil {
		b.Fatal(err)
	}
	// Warm up once so pooled searchers and arenas exist before timing.
	if _, err := tree.KNNBatch(qd.Points.Coords, k); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tree.KNNBatch(qd.Points.Coords, k)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != nq {
			b.Fatalf("got %d results, want %d", len(res), nq)
		}
	}
	b.StopTimer()
	// Report per-query cost: ns/op divided by nq is the paper's metric.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nq), "ns/query")
}

func BenchmarkKNNBatch(b *testing.B) {
	b.Run("cosmo3d/t=1", func(b *testing.B) { benchKNNBatch(b, "cosmo", 200_000, 20_000, 5, 1) })
	b.Run("dayabay10d/t=1", func(b *testing.B) { benchKNNBatch(b, "dayabay", 100_000, 10_000, 5, 1) })
	b.Run("cosmo3d/t=4", func(b *testing.B) { benchKNNBatch(b, "cosmo", 200_000, 20_000, 5, 4) })
	b.Run("dayabay10d/t=4", func(b *testing.B) { benchKNNBatch(b, "dayabay", 100_000, 10_000, 5, 4) })
}
