package panda

import (
	"os"
	"path/filepath"
	"testing"
)

// snapshotBenchPoints matches the cosmo3d serving benchmark scale
// (bench_knnbatch_test.go): 200k 3-D points.
const snapshotBenchPoints = 200_000

// benchCoords generates the cosmo3d benchmark dataset once per run.
func benchCoords(b *testing.B) ([]float32, int) {
	b.Helper()
	coords, dims, _, err := GenerateDataset("cosmo", snapshotBenchPoints, 1)
	if err != nil {
		b.Fatal(err)
	}
	return coords, dims
}

// BenchmarkBuild is the cold-start cost a snapshot amortizes away: full
// tree construction from raw points (single thread, the paper's default
// options — the same configuration the snapshot in BenchmarkSnapshotOpen
// was written from).
func BenchmarkBuild(b *testing.B) {
	coords, dims := benchCoords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := Build(coords, dims, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if tree.Len() != snapshotBenchPoints {
			b.Fatal("short build")
		}
	}
}

// BenchmarkSnapshotOpen is the warm-start cost: mmap the snapshot, validate
// (CRC, section bounds, node graph, finite coords), and stand the tree up
// zero-copy. The BENCH_snapshot.json ratio against BenchmarkBuild is the
// restart-speedup headline.
func BenchmarkSnapshotOpen(b *testing.B) {
	coords, dims := benchCoords(b)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.pnds")
	if err := tree.WriteSnapshot(path); err != nil {
		b.Fatal(err)
	}
	if st, err := os.Stat(path); err == nil {
		b.ReportMetric(float64(st.Size()), "file-bytes")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if warm.Len() != snapshotBenchPoints {
			b.Fatal("short snapshot")
		}
		warm.Close()
	}
}

// BenchmarkSnapshotRead is the copying fallback path, for the gap between
// mmap warm start and a full deserialize.
func BenchmarkSnapshotRead(b *testing.B) {
	coords, dims := benchCoords(b)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.pnds")
	if err := tree.WriteSnapshot(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := ReadSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if warm.Len() != snapshotBenchPoints {
			b.Fatal("short snapshot")
		}
	}
}

// BenchmarkSnapshotWrite rounds out the cycle: serializing a built 200k
// tree to disk.
func BenchmarkSnapshotWrite(b *testing.B) {
	coords, dims := benchCoords(b)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.WriteSnapshot(filepath.Join(dir, "bench.pnds")); err != nil {
			b.Fatal(err)
		}
	}
}
