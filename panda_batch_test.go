package panda

import "testing"

// TestKNNBatchLargeMatchesSingle covers the full batched engine: a batch
// large enough to trigger Morton-ordered scheduling (n ≥ queryOrderMin) and
// multiple worker chunks must return, per query, exactly what a standalone
// KNN call returns, in the original query order.
func TestKNNBatchLargeMatchesSingle(t *testing.T) {
	for _, gen := range []string{"cosmo", "dayabay"} {
		coords, dims, _ := genCoords(gen, 5000, 11, t)
		tree, err := Build(coords, dims, nil, &BuildOptions{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		nq := 600 // > queryOrderMin and > several chunks
		queries := coords[:nq*dims]
		batch, err := tree.KNNBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != nq {
			t.Fatalf("%s: batch size = %d, want %d", gen, len(batch), nq)
		}
		for i := 0; i < nq; i++ {
			single := tree.KNN(queries[i*dims:(i+1)*dims], 5)
			if len(batch[i]) != len(single) {
				t.Fatalf("%s query %d: %d neighbors, want %d", gen, i, len(batch[i]), len(single))
			}
			for j := range single {
				if batch[i][j] != single[j] {
					t.Fatalf("%s query %d neighbor %d: batch %v vs single %v",
						gen, i, j, batch[i][j], single[j])
				}
			}
		}
	}
}

// TestKNNBatchFlatInvariants checks the arena contract: offsets are
// monotone with offsets[0]==0 and offsets[n]==len(flat), each slot is
// sorted by (distance, id), and slots hold exactly min(k, points)
// neighbors.
func TestKNNBatchFlatInvariants(t *testing.T) {
	coords, dims, _ := genCoords("uniform", 1000, 3, t)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nq := 300
	flat, offsets, err := tree.KNNBatchFlat(coords[:nq*dims], 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != nq+1 || offsets[0] != 0 || int(offsets[nq]) != len(flat) {
		t.Fatalf("offsets shape: len=%d first=%d last=%d flat=%d",
			len(offsets), offsets[0], offsets[nq], len(flat))
	}
	for i := 0; i < nq; i++ {
		lo, hi := offsets[i], offsets[i+1]
		if hi-lo != 7 {
			t.Fatalf("query %d: %d neighbors, want 7", i, hi-lo)
		}
		for j := lo + 1; j < hi; j++ {
			a, b := flat[j-1], flat[j]
			if a.Dist2 > b.Dist2 || (a.Dist2 == b.Dist2 && a.ID >= b.ID) {
				t.Fatalf("query %d: slot not sorted: %v before %v", i, a, b)
			}
		}
	}
}

// TestKNNBatchEdgeCases: k exceeding the point count clamps to Len; k ≤ 0
// and empty batches return empty results without error.
func TestKNNBatchEdgeCases(t *testing.T) {
	coords, dims, _ := genCoords("uniform", 10, 9, t)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := tree.KNNBatch(coords, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, nbrs := range batch {
		if len(nbrs) != 10 {
			t.Fatalf("query %d: %d neighbors, want all 10", i, len(nbrs))
		}
	}
	if batch, err = tree.KNNBatch(coords, 0); err != nil || len(batch) != 10 {
		t.Fatalf("k=0: batch=%d err=%v", len(batch), err)
	}
	for i, nbrs := range batch {
		if len(nbrs) != 0 {
			t.Fatalf("k=0 query %d returned %d neighbors", i, len(nbrs))
		}
	}
	if batch, err = tree.KNNBatch(nil, 3); err != nil || len(batch) != 0 {
		t.Fatalf("empty batch: batch=%d err=%v", len(batch), err)
	}
}

// TestKNNBatchZeroAllocsPerQuery asserts the batch engine's amortized
// allocation count: a whole warmed-up batch performs O(1) allocations
// (arena + offsets + bookkeeping), not O(queries).
func TestKNNBatchZeroAllocsPerQuery(t *testing.T) {
	coords, dims, _ := genCoords("cosmo", 20_000, 13, t)
	tree, err := Build(coords, dims, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const nq = 2000
	queries := coords[:nq*dims]
	tree.KNNBatch(queries, 5) // warm the searcher pool
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := tree.KNNBatch(queries, 5); err != nil {
			t.Fatal(err)
		}
	})
	perQuery := allocs / nq
	if perQuery > 0.01 {
		t.Fatalf("%v allocations per query (%.0f per batch), want amortized 0", perQuery, allocs)
	}
}
