package panda

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestJoinTCPListenerFailedJoinFreesPort is the satellite regression for
// the JoinTCP listener leak: a join that fails inside transport.NewTCP must
// release the bound listener so the port is immediately reusable.
func TestJoinTCPListenerFailedJoinFreesPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:1"}
	done := make(chan error, 1)
	go func() {
		_, _, err := JoinTCPListener(0, ln, addrs, 1)
		done <- err
	}()

	// Pose as rank 1 but send an invalid hello (claiming rank 0), which
	// fails the mesh handshake.
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], 0)
	if _, err := nc.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("join with an invalid peer hello succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failed join hung instead of returning")
	}
	relisten, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("failed join leaked the listener port: %v", err)
	}
	relisten.Close()
}
