// Package panda is a from-scratch Go implementation of PANDA (Patwary et
// al., "PANDA: Extreme Scale Parallel K-Nearest Neighbor on Distributed
// Architectures", 2016): a distributed kd-tree based exact k-nearest-
// neighbor system that parallelizes both tree construction and querying.
//
// The package offers two layers:
//
//   - single-node trees (Build / Tree.KNN / Tree.KNNBatch): the paper's
//     local kd-tree with sampled-median splits, variance-based dimension
//     selection, and SIMD-packed 32-point leaf buckets;
//
//   - distributed trees (RunCluster / Node.Build / DistTree.Query): the
//     global partition tree + per-rank local trees of §III, with owner
//     routing, r'-pruned remote fan-out and top-k merging, over an
//     in-process simulated cluster or real TCP ranks (JoinTCP).
//
// Distributed runs also produce a SimReport: per-phase timings under a
// calibrated analytic cost model that reproduces the paper's scaling
// behaviour on a single machine (see DESIGN.md).
package panda

import (
	"fmt"
	"runtime"
	"sync"

	"panda/internal/geom"
	"panda/internal/kdtree"
	"panda/internal/sample"
)

// Neighbor is one KNN result: the neighbor's id (the index or caller id of
// the data point) and its squared Euclidean distance from the query.
type Neighbor = kdtree.Neighbor

// BuildOptions tunes kd-tree construction. The zero value gives the paper's
// defaults (variance split dimension, sampled-median split value, bucket
// size 32, single thread).
type BuildOptions struct {
	// BucketSize is the max leaf size (default 32, the paper's best).
	BucketSize int
	// Threads is the (simulated) thread count used for construction and
	// batch queries (default 1).
	Threads int
	// SplitDimension is "variance" (default) or "range".
	SplitDimension string
	// SplitValue is "sampled-median" (default), "mean-sample" (FLANN
	// policy) or "mid-range" (ANN policy).
	SplitValue string
}

func (o *BuildOptions) toInternal() (kdtree.Options, error) {
	var opts kdtree.Options
	if o == nil {
		return opts, nil
	}
	opts.BucketSize = o.BucketSize
	opts.Threads = o.Threads
	switch o.SplitDimension {
	case "", "variance":
		opts.SplitPolicy = sample.MaxVariance
	case "range":
		opts.SplitPolicy = sample.MaxRange
	default:
		return opts, fmt.Errorf("panda: unknown SplitDimension %q", o.SplitDimension)
	}
	switch o.SplitValue {
	case "", "sampled-median":
		opts.SplitValue = kdtree.SplitSampledMedian
	case "mean-sample":
		opts.SplitValue = kdtree.SplitMeanSample
	case "mid-range":
		opts.SplitValue = kdtree.SplitMidRange
	default:
		return opts, fmt.Errorf("panda: unknown SplitValue %q", o.SplitValue)
	}
	return opts, nil
}

// Tree is a single-node kd-tree over a point set.
type Tree struct {
	t       *kdtree.Tree
	threads int
}

// TreeStats summarizes a built tree.
type TreeStats struct {
	Points     int
	Nodes      int
	Leaves     int
	Height     int
	MaxBucket  int
	MeanBucket float64
}

// Build constructs a kd-tree over n = len(coords)/dims points stored
// row-major in coords. ids, when non-nil, assigns each point the id
// reported in query results (default: point index). coords is copied.
func Build(coords []float32, dims int, ids []int64, opts *BuildOptions) (*Tree, error) {
	if dims <= 0 || len(coords)%dims != 0 {
		return nil, fmt.Errorf("panda: %d coords is not a multiple of dims %d", len(coords), dims)
	}
	kopts, err := opts.toInternal()
	if err != nil {
		return nil, err
	}
	if ids != nil && len(ids)*dims != len(coords) {
		return nil, fmt.Errorf("panda: %d ids for %d points", len(ids), len(coords)/dims)
	}
	threads := kopts.Threads
	if threads <= 0 {
		threads = 1
	}
	t := kdtree.Build(geom.FromCoords(coords, dims), ids, kopts)
	return &Tree{t: t, threads: threads}, nil
}

// Stats returns structural statistics.
func (t *Tree) Stats() TreeStats {
	s := t.t.Stats()
	return TreeStats{
		Points: s.Points, Nodes: s.Nodes, Leaves: s.Leaves,
		Height: s.Height, MaxBucket: s.MaxBucket, MeanBucket: s.MeanBucket,
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.t.Len() }

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.t.Points.Dims }

// KNN returns the k nearest neighbors of q sorted by ascending distance
// (exact; ties broken by id).
func (t *Tree) KNN(q []float32, k int) []Neighbor {
	return t.t.KNN(q, k)
}

// KNNBatch answers many queries (len(queries)/Dims of them, row-major),
// parallelized over the tree's configured thread count. Result i holds the
// neighbors of query i.
func (t *Tree) KNNBatch(queries []float32, k int) ([][]Neighbor, error) {
	dims := t.t.Points.Dims
	if dims == 0 || len(queries)%dims != 0 {
		return nil, fmt.Errorf("panda: query buffer not a multiple of dims %d", dims)
	}
	n := len(queries) / dims
	out := make([][]Neighbor, n)
	workers := t.threads
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if workers <= 1 {
		s := t.t.NewSearcher()
		for i := 0; i < n; i++ {
			out[i], _ = s.Search(queries[i*dims:(i+1)*dims], k, kdtree.Inf2, nil)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := t.t.NewSearcher()
			for i := w; i < n; i += workers {
				out[i], _ = s.Search(queries[i*dims:(i+1)*dims], k, kdtree.Inf2, nil)
			}
		}(w)
	}
	wg.Wait()
	return out, nil
}

// RadiusSearch returns every indexed point with squared distance < r2 from
// q, sorted by ascending distance — the fixed-radius neighborhood primitive
// used by DBSCAN-style clustering (the BD-CATS workload the paper contrasts
// KNN with in §I).
func (t *Tree) RadiusSearch(q []float32, r2 float32) []Neighbor {
	out, _ := t.t.NewSearcher().RadiusSearch(q, r2, nil)
	return out
}

// CountWithin returns how many indexed points lie strictly within squared
// radius r2 of q, without materializing them.
func (t *Tree) CountWithin(q []float32, r2 float32) int {
	n, _ := t.t.NewSearcher().CountWithin(q, r2)
	return n
}

// Regress predicts a continuous value for q by inverse-distance-weighted
// averaging of its k nearest neighbors' values (value maps a point id to
// its target). An exact-match neighbor (distance 0) returns its value
// directly. This is the k-NN regression mode the paper names as the next
// application of PANDA ("In future, we intend to use PANDA in regression").
// Returns 0 for an empty tree or k < 1.
func (t *Tree) Regress(q []float32, k int, value func(id int64) float64) float64 {
	nbrs := t.KNN(q, k)
	return WeightedAverage(nbrs, value)
}

// WeightedAverage combines neighbor values by inverse-distance weighting
// (1/d²; an exact match short-circuits to its own value).
func WeightedAverage(neighbors []Neighbor, value func(id int64) float64) float64 {
	if len(neighbors) == 0 {
		return 0
	}
	var num, den float64
	for _, nb := range neighbors {
		if nb.Dist2 == 0 {
			return value(nb.ID)
		}
		w := 1 / float64(nb.Dist2)
		num += w * value(nb.ID)
		den += w
	}
	return num / den
}

// MajorityVote classifies by k-NN majority vote: label returns the class of
// a data point id; ties go to the closest-neighbor class among the tied
// ones (neighbors must be distance-sorted, as returned by KNN). Returns 0
// for an empty neighbor list.
func MajorityVote(neighbors []Neighbor, label func(id int64) uint8) uint8 {
	if len(neighbors) == 0 {
		return 0
	}
	counts := make(map[uint8]int)
	best := label(neighbors[0].ID)
	bestCount := 0
	for _, nb := range neighbors {
		c := label(nb.ID)
		counts[c]++
		if counts[c] > bestCount {
			best, bestCount = c, counts[c]
		}
	}
	return best
}
