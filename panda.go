// Package panda is a from-scratch Go implementation of PANDA (Patwary et
// al., "PANDA: Extreme Scale Parallel K-Nearest Neighbor on Distributed
// Architectures", 2016): a distributed kd-tree based exact k-nearest-
// neighbor system that parallelizes both tree construction and querying.
//
// The package offers two layers:
//
//   - single-node trees (Build / Tree.KNN / Tree.KNNBatch): the paper's
//     local kd-tree with sampled-median splits, variance-based dimension
//     selection, and SIMD-packed 32-point leaf buckets;
//
//   - distributed trees (RunCluster / Node.Build / DistTree.Query): the
//     global partition tree + per-rank local trees of §III, with owner
//     routing, r'-pruned remote fan-out and top-k merging, over an
//     in-process simulated cluster or real TCP ranks (JoinTCP).
//
// A TCP serving layer (internal/server, cmd/panda-serve) exposes a built
// tree to external processes; Dial returns a Client whose single queries
// the server coalesces into batched engine calls via dynamic
// micro-batching.
//
// Distributed runs also produce a SimReport: per-phase timings under a
// calibrated analytic cost model that reproduces the paper's scaling
// behaviour on a single machine (see DESIGN.md).
package panda

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"panda/internal/geom"
	"panda/internal/kdtree"
	"panda/internal/sample"
)

// Neighbor is one KNN result: the neighbor's id (the index or caller id of
// the data point) and its squared Euclidean distance from the query.
type Neighbor = kdtree.Neighbor

// BuildOptions tunes kd-tree construction. The zero value gives the paper's
// defaults (variance split dimension, sampled-median split value, bucket
// size 32, single thread).
type BuildOptions struct {
	// BucketSize is the max leaf size (default 32, the paper's best).
	BucketSize int
	// Threads is the thread count used for construction and batch queries
	// (default 1). It is both the paper's simulated thread count (cost-model
	// charging, stage switchover) and the cap on real parallelism: Build
	// fans out to min(Threads, GOMAXPROCS) workers, and the produced tree
	// is byte-identical at every setting — only wall-clock time changes.
	Threads int
	// SplitDimension is "variance" (default) or "range".
	SplitDimension string
	// SplitValue is "sampled-median" (default), "mean-sample" (FLANN
	// policy) or "mid-range" (ANN policy).
	SplitValue string
}

func (o *BuildOptions) toInternal() (kdtree.Options, error) {
	var opts kdtree.Options
	if o == nil {
		return opts, nil
	}
	opts.BucketSize = o.BucketSize
	opts.Threads = o.Threads
	switch o.SplitDimension {
	case "", "variance":
		opts.SplitPolicy = sample.MaxVariance
	case "range":
		opts.SplitPolicy = sample.MaxRange
	default:
		return opts, fmt.Errorf("panda: unknown SplitDimension %q", o.SplitDimension)
	}
	switch o.SplitValue {
	case "", "sampled-median":
		opts.SplitValue = kdtree.SplitSampledMedian
	case "mean-sample":
		opts.SplitValue = kdtree.SplitMeanSample
	case "mid-range":
		opts.SplitValue = kdtree.SplitMidRange
	default:
		return opts, fmt.Errorf("panda: unknown SplitValue %q", o.SplitValue)
	}
	return opts, nil
}

// Tree is a single-node kd-tree over a point set.
type Tree struct {
	t       *kdtree.Tree
	threads int
	// pool recycles warmed-up searchers (heap, traversal stack, scratch)
	// across queries and batches so the steady-state query loop performs
	// zero allocations.
	pool sync.Pool
	// scratch recycles per-batch bookkeeping (counts, Morton permutation)
	// so repeated KNNBatchFlatInto calls allocate nothing once warm.
	scratch sync.Pool
	// closeSnap releases the snapshot mapping backing an OpenSnapshot tree
	// (nil for built trees); see Tree.Close.
	closeSnap func() error
	// fp caches the content fingerprint (immutable once built).
	fpOnce sync.Once
	fp     uint64
}

// Fingerprint returns the 64-bit content hash identifying this tree's
// dataset: dims, point count, packed coordinates, ids, and node array. A
// tree built in memory and the same tree reopened from a snapshot hash
// identically. The serving layer folds it into the dataset id reported in
// the protocol welcome. Computed once and cached.
func (t *Tree) Fingerprint() uint64 {
	t.fpOnce.Do(func() { t.fp = t.t.Raw().Fingerprint() })
	return t.fp
}

// batchScratch is the per-batch bookkeeping KNNBatchFlatInto reuses across
// calls: per-query result counts, the Morton-ordering work arrays, and the
// shared worker-run state.
type batchScratch struct {
	counts []int32
	perm   []int32
	keys   []uint32
	bins   []int32
	run    batchRun
}

// batchRun is the state one KNNBatchFlatInto call shares across its
// workers, who claim chunks of queries from cursor. It lives inside the
// pooled batchScratch (rather than as stack locals captured by a closure)
// so that the worker-spawn path, which makes captured state escape, costs
// the steady-state loop no allocations.
type batchRun struct {
	t                *Tree
	queries          []float32
	flat             []Neighbor
	counts           []int32
	perm             []int32
	k, kEff, dims, n int
	cursor           atomic.Int64
}

// runChunks drains the batch with one searcher: claim a chunk of queries,
// answer each into its arena slot, repeat until the cursor runs out.
func (r *batchRun) runChunks(s *kdtree.Searcher) {
	n, kEff, dims := r.n, r.kEff, r.dims
	for {
		lo := int(r.cursor.Add(1)-1) * batchChunk
		if lo >= n {
			return
		}
		hi := lo + batchChunk
		if hi > n {
			hi = n
		}
		for p := lo; p < hi; p++ {
			i := p
			if r.perm != nil {
				i = int(r.perm[p])
			}
			slot := r.flat[i*kEff : i*kEff : (i+1)*kEff]
			res, _ := s.Search(r.queries[i*dims:(i+1)*dims], r.k, kdtree.Inf2, slot)
			r.counts[i] = int32(len(res))
		}
	}
}

func (t *Tree) getScratch() *batchScratch {
	if s, ok := t.scratch.Get().(*batchScratch); ok {
		return s
	}
	return &batchScratch{}
}

// growInt32 returns s resized to n entries, reallocating only when capacity
// is short. Contents are unspecified; callers overwrite every entry.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// getSearcher returns a pooled searcher for t, creating one on first use.
func (t *Tree) getSearcher() *kdtree.Searcher {
	if s, ok := t.pool.Get().(*kdtree.Searcher); ok {
		return s
	}
	return t.t.NewSearcher()
}

func (t *Tree) putSearcher(s *kdtree.Searcher) { t.pool.Put(s) }

// TreeStats summarizes a built tree.
type TreeStats struct {
	Points     int
	Nodes      int
	Leaves     int
	Height     int
	MaxBucket  int
	MeanBucket float64
}

// Build constructs a kd-tree over n = len(coords)/dims points stored
// row-major in coords. ids, when non-nil, assigns each point the id
// reported in query results (default: point index). coords is copied.
func Build(coords []float32, dims int, ids []int64, opts *BuildOptions) (*Tree, error) {
	if dims <= 0 || len(coords)%dims != 0 {
		return nil, fmt.Errorf("panda: %d coords is not a multiple of dims %d", len(coords), dims)
	}
	kopts, err := opts.toInternal()
	if err != nil {
		return nil, err
	}
	if ids != nil && len(ids)*dims != len(coords) {
		return nil, fmt.Errorf("panda: %d ids for %d points", len(ids), len(coords)/dims)
	}
	threads := kopts.Threads
	if threads <= 0 {
		threads = 1
	}
	t := kdtree.Build(geom.FromCoords(coords, dims), ids, kopts)
	return &Tree{t: t, threads: threads}, nil
}

// Stats returns structural statistics.
func (t *Tree) Stats() TreeStats {
	s := t.t.Stats()
	return TreeStats{
		Points: s.Points, Nodes: s.Nodes, Leaves: s.Leaves,
		Height: s.Height, MaxBucket: s.MaxBucket, MeanBucket: s.MeanBucket,
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.t.Len() }

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.t.Points.Dims }

// KNN returns the k nearest neighbors of q sorted by ascending distance
// (exact; ties broken by id). Non-finite query coordinates (NaN/±Inf) make
// every pruning comparison false inside the kernel, so they are rejected up
// front: the result is nil, matching the error the checked entry points
// (KNNBatch, Client.KNN) return for the same input.
func (t *Tree) KNN(q []float32, k int) []Neighbor {
	if !geom.AllFinite(q) {
		return nil
	}
	s := t.getSearcher()
	res, _ := s.Search(q, k, kdtree.Inf2, nil)
	t.putSearcher(s)
	return res
}

// KNNBoundedInto appends the up-to-k nearest neighbors of q with squared
// distance strictly below r2 — the paper's r'-bounded remote candidate
// search (§III-B step 4), which the cluster serving layer answers on behalf
// of a query's owner rank. Pass kdtree.Inf2 semantics via math.MaxFloat32
// for an unbounded search. Non-finite inputs return out unchanged.
func (t *Tree) KNNBoundedInto(q []float32, k int, r2 float32, out []Neighbor) []Neighbor {
	if !geom.AllFinite(q) || !geom.Finite(r2) {
		return out
	}
	s := t.getSearcher()
	out, _ = s.Search(q, k, r2, out)
	t.putSearcher(s)
	return out
}

// batchChunk is the unit of dynamic work assignment in KNNBatch: workers
// claim runs of queries from a shared atomic cursor, so a few expensive
// queries (dense regions, high dimensions) cannot idle the other workers
// the way fixed striding could.
const batchChunk = 64

// KNNBatch answers many queries (len(queries)/Dims of them, row-major),
// parallelized over the tree's configured thread count. Result i holds the
// neighbors of query i; all result slices are views into one flat backing
// array (see KNNBatchFlat), so a batch costs O(1) allocations rather than
// O(queries).
func (t *Tree) KNNBatch(queries []float32, k int) ([][]Neighbor, error) {
	flat, offsets, err := t.KNNBatchFlat(queries, k)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(offsets)-1)
	for i := range out {
		out[i] = flat[offsets[i]:offsets[i+1]:offsets[i+1]]
	}
	return out, nil
}

// KNNBatchFlat is the arena form of KNNBatch: neighbors of query i occupy
// flat[offsets[i]:offsets[i+1]], ascending by (distance, id). One backing
// array serves the whole batch — each worker's searcher appends into its
// queries' pre-sized slots, so the steady-state loop performs zero
// allocations per query. Queries are processed in Morton (Z-curve) order of
// their leading coordinates so consecutive queries traverse largely the
// same tree paths (per-query results are position-independent; only the
// processing schedule changes). Use this form when feeding results into
// further batch stages (classification, regression, serialization) without
// materializing per-query slices.
func (t *Tree) KNNBatchFlat(queries []float32, k int) ([]Neighbor, []int32, error) {
	return t.KNNBatchFlatInto(queries, k, nil, nil)
}

// KNNBatchFlatInto is KNNBatchFlat with caller-owned result storage: flat
// and offsets (either may be nil) are reused when their capacity suffices
// and reallocated otherwise, and the returned slices must be used in their
// place. Per-batch bookkeeping is recycled through an internal pool, so a
// caller that feeds the returned slices back in — the serving layer's
// dispatch loop does — runs the whole batch path with zero steady-state
// allocations.
func (t *Tree) KNNBatchFlatInto(queries []float32, k int, flat []Neighbor, offsets []int32) ([]Neighbor, []int32, error) {
	dims := t.t.Points.Dims
	if dims == 0 || len(queries)%dims != 0 {
		return nil, nil, fmt.Errorf("panda: query buffer not a multiple of dims %d", dims)
	}
	if !geom.AllFinite(queries) {
		return nil, nil, fmt.Errorf("panda: non-finite query coordinate (NaN coordinates disable kd-tree pruning)")
	}
	n := len(queries) / dims
	offsets = growInt32(offsets, n+1)
	// Every query returns exactly min(k, points) neighbors under an
	// unbounded radius, so slot sizes are known up front.
	kEff := k
	if kEff > t.t.Len() {
		kEff = t.t.Len()
	}
	if n == 0 || kEff <= 0 {
		for i := range offsets {
			offsets[i] = 0
		}
		return flat[:0], offsets, nil
	}
	// Offsets are int32; reject batches whose result arena wouldn't fit
	// rather than silently wrapping during compaction.
	if int64(n)*int64(kEff) > math.MaxInt32 {
		return nil, nil, fmt.Errorf("panda: batch result arena %d×%d exceeds int32 offsets; split the batch", n, kEff)
	}
	if cap(flat) < n*kEff {
		flat = make([]Neighbor, n*kEff)
	} else {
		flat = flat[:n*kEff]
	}
	sc := t.getScratch()
	sc.counts = growInt32(sc.counts, n)
	counts := sc.counts
	perm := t.queryOrder(queries, n, dims, sc)

	r := &sc.run
	r.t, r.queries, r.flat, r.counts, r.perm = t, queries, flat, counts, perm
	r.k, r.kEff, r.dims, r.n = k, kEff, dims, n
	r.cursor.Store(0)

	workers := t.threads
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if nc := (n + batchChunk - 1) / batchChunk; workers > nc {
		workers = nc
	}
	if workers <= 1 {
		s := t.getSearcher()
		r.runChunks(s)
		t.putSearcher(s)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := t.getSearcher()
				r.runChunks(s)
				t.putSearcher(s)
			}()
		}
		wg.Wait()
	}
	// Drop the caller-owned references before the scratch returns to the
	// pool so a pooled scratch cannot pin a retired arena.
	r.queries, r.flat = nil, nil

	// Compact: with non-finite inputs rejected above, every query returns
	// exactly kEff neighbors and this pass is pure offset bookkeeping; the
	// copy path is kept as a guard for short counts.
	pos := int32(0)
	offsets[0] = 0
	for i := 0; i < n; i++ {
		cnt := counts[i]
		src := int32(i) * int32(kEff)
		if src != pos {
			copy(flat[pos:pos+cnt], flat[src:src+cnt])
		}
		pos += cnt
		offsets[i+1] = pos
	}
	t.scratch.Put(sc)
	return flat[:pos], offsets, nil
}

// queryOrderMin is the batch size below which Morton ordering isn't worth
// the counting-sort pass.
const queryOrderMin = 256

// queryOrder returns a processing permutation that visits queries along a
// Morton (Z-curve) over their first ≤3 coordinates, quantized to 5 bits per
// dimension against the tree's bounding box. Spatially adjacent queries
// traverse largely the same kd-tree nodes and leaf buckets, so scheduling
// them consecutively keeps those cache lines hot across queries — a pure
// scheduling change (results are written to each query's own slot). Returns
// nil (natural order) for small batches.
func (t *Tree) queryOrder(queries []float32, n, dims int, sc *batchScratch) []int32 {
	if n < queryOrderMin {
		return nil
	}
	m := dims
	if m > 3 {
		m = 3
	}
	box := t.t.Box
	if len(box.Min) < m {
		return nil
	}
	const cellBits = 5 // 32 cells per dimension, ≤ 15-bit keys
	scale := make([]float32, m)
	for d := 0; d < m; d++ {
		if ext := box.Max[d] - box.Min[d]; ext > 0 {
			scale[d] = (1 << cellBits) / ext
		}
	}
	// Per-dimension spread tables: bit b of a cell index lands at key
	// position b*m+d (Z-curve interleave), precomputed for the 32 cells.
	var spread [3][1 << cellBits]uint32
	for d := 0; d < m; d++ {
		for c := 0; c < 1<<cellBits; c++ {
			var v uint32
			for b := 0; b < cellBits; b++ {
				v |= (uint32(c) >> b & 1) << (b*m + d)
			}
			spread[d][c] = v
		}
	}
	if cap(sc.keys) < n {
		sc.keys = make([]uint32, n)
	}
	keys := sc.keys[:n]
	for i := 0; i < n; i++ {
		q := queries[i*dims : i*dims+m]
		var key uint32
		for d := 0; d < m; d++ {
			x := (q[d] - box.Min[d]) * scale[d]
			var c uint32
			if x > 0 { // false for NaN and below-range: cell 0
				c = uint32(x)
				if c > (1<<cellBits)-1 {
					c = (1 << cellBits) - 1
				}
			}
			key |= spread[d][c]
		}
		keys[i] = key
	}
	sc.perm = growInt32(sc.perm, n)
	perm := sc.perm
	for i := range perm {
		perm[i] = int32(i)
	}
	maxKey := 1 << (cellBits * m)
	if n < maxKey/4 {
		// Small batch: a comparison sort beats zeroing and prefix-summing
		// the full bin table. Stable, so equal-cell queries keep input
		// order like the counting sort below.
		sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
		return perm
	}
	// Counting sort by key — O(n + cells), stable, so equal-cell queries
	// keep their input order.
	sc.bins = growInt32(sc.bins, maxKey+1)
	bins := sc.bins
	for i := range bins {
		bins[i] = 0
	}
	for _, k := range keys {
		bins[k+1]++
	}
	for b := 1; b <= maxKey; b++ {
		bins[b] += bins[b-1]
	}
	for i := 0; i < n; i++ {
		k := keys[i]
		perm[bins[k]] = int32(i)
		bins[k]++
	}
	return perm
}

// KNNInto appends the k nearest neighbors of q to out (which may be nil)
// and returns the extended slice. When out has spare capacity for k
// results, the query performs zero allocations — the serving layer's
// dispatch loop relies on this. Non-finite query coordinates return out
// unchanged (see KNN).
func (t *Tree) KNNInto(q []float32, k int, out []Neighbor) []Neighbor {
	if !geom.AllFinite(q) {
		return out
	}
	s := t.getSearcher()
	out, _ = s.Search(q, k, kdtree.Inf2, out)
	t.putSearcher(s)
	return out
}

// RadiusSearchInto appends every indexed point with squared distance < r2
// from q to out (which may be nil) and returns the extended slice, sorted
// by ascending distance. With spare capacity in out the query performs zero
// allocations. Non-finite inputs (coordinates or r2) return out unchanged
// (see KNN).
func (t *Tree) RadiusSearchInto(q []float32, r2 float32, out []Neighbor) []Neighbor {
	if !geom.AllFinite(q) || !geom.Finite(r2) {
		return out
	}
	s := t.getSearcher()
	out, _ = s.RadiusSearch(q, r2, out)
	t.putSearcher(s)
	return out
}

// RadiusSearch returns every indexed point with squared distance < r2 from
// q, sorted by ascending distance — the fixed-radius neighborhood primitive
// used by DBSCAN-style clustering (the BD-CATS workload the paper contrasts
// KNN with in §I). Non-finite inputs return nil (see KNN).
func (t *Tree) RadiusSearch(q []float32, r2 float32) []Neighbor {
	return t.RadiusSearchInto(q, r2, nil)
}

// CountWithin returns how many indexed points lie strictly within squared
// radius r2 of q, without materializing them. Non-finite inputs return 0.
func (t *Tree) CountWithin(q []float32, r2 float32) int {
	if !geom.AllFinite(q) || !geom.Finite(r2) {
		return 0
	}
	s := t.getSearcher()
	n, _ := s.CountWithin(q, r2)
	t.putSearcher(s)
	return n
}

// Regress predicts a continuous value for q by inverse-distance-weighted
// averaging of its k nearest neighbors' values (value maps a point id to
// its target). An exact-match neighbor (distance 0) returns its value
// directly. This is the k-NN regression mode the paper names as the next
// application of PANDA ("In future, we intend to use PANDA in regression").
// Returns 0 for an empty tree or k < 1.
func (t *Tree) Regress(q []float32, k int, value func(id int64) float64) float64 {
	nbrs := t.KNN(q, k)
	return WeightedAverage(nbrs, value)
}

// WeightedAverage combines neighbor values by inverse-distance weighting
// (1/d²; an exact match short-circuits to its own value).
func WeightedAverage(neighbors []Neighbor, value func(id int64) float64) float64 {
	if len(neighbors) == 0 {
		return 0
	}
	var num, den float64
	for _, nb := range neighbors {
		if nb.Dist2 == 0 {
			return value(nb.ID)
		}
		w := 1 / float64(nb.Dist2)
		num += w * value(nb.ID)
		den += w
	}
	return num / den
}

// MajorityVote classifies by k-NN majority vote: label returns the class of
// a data point id; ties go to the closest-neighbor class among the tied
// ones (neighbors must be distance-sorted, as returned by KNN). Returns 0
// for an empty neighbor list.
func MajorityVote(neighbors []Neighbor, label func(id int64) uint8) uint8 {
	if len(neighbors) == 0 {
		return 0
	}
	counts := make(map[uint8]int)
	best := label(neighbors[0].ID)
	bestCount := 0
	for _, nb := range neighbors {
		c := label(nb.ID)
		counts[c]++
		if counts[c] > bestCount {
			best, bestCount = c, counts[c]
		}
	}
	return best
}
