package panda

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"runtime"
	"sync"

	"panda/internal/cluster"
	"panda/internal/core"
	"panda/internal/geom"
	"panda/internal/simtime"
	"panda/internal/transport"
)

// Node is one rank's handle inside a distributed run: its communicator plus
// helpers to build and query distributed trees. Obtain one via RunCluster
// (in-process simulated cluster) or JoinTCP (real multi-process mesh).
type Node struct {
	comm *cluster.Comm
}

// Rank returns this node's rank in [0, Size).
func (n *Node) Rank() int { return n.comm.Rank() }

// Size returns the cluster size.
func (n *Node) Size() int { return n.comm.Size() }

// Threads returns the simulated thread count per rank.
func (n *Node) Threads() int { return n.comm.Threads() }

// Barrier blocks until every rank reaches it.
func (n *Node) Barrier() { n.comm.Barrier() }

// Result is the distributed query answer for one query id.
type Result = core.Result

// QueryTrace carries the distributed execution counters of one query wave
// (queries routed, forwarded to remote ranks, remote candidates that won).
type QueryTrace = core.QueryTrace

// DistTree is a distributed kd-tree handle held by one rank.
type DistTree struct {
	dt *core.DistTree

	localOnce    sync.Once
	local        *Tree
	serveThreads int
	// restoredTotal and closeSnap are set by OpenClusterSnapshot: the
	// cluster-wide point total recorded at save time, and the release hook
	// for the snapshot mapping (see DistTree.Close).
	restoredTotal int64
	closeSnap     func() error
}

// Build constructs the distributed kd-tree over this rank's point shard
// (SPMD: every rank must call it). ids are global point identifiers (nil
// derives unique defaults). opts configures the local trees and, through
// the split policies, the global tree.
func (n *Node) Build(coords []float32, dims int, ids []int64, opts *BuildOptions) (*DistTree, error) {
	if dims <= 0 || len(coords)%dims != 0 {
		return nil, fmt.Errorf("panda: %d coords not a multiple of dims %d", len(coords), dims)
	}
	kopts, err := opts.toInternal()
	if err != nil {
		return nil, err
	}
	dt, err := core.BuildDistributed(n.comm, geom.FromCoords(coords, dims), ids, core.Options{Local: kopts})
	if err != nil {
		return nil, err
	}
	return &DistTree{dt: dt}, nil
}

// LocalLen returns how many points this rank owns after redistribution.
func (t *DistTree) LocalLen() int { return t.dt.Local.Len() }

// GlobalLevels returns the depth of the replicated global partition tree
// (log2 of the rank count for power-of-two clusters).
func (t *DistTree) GlobalLevels() int { return t.dt.Global.Levels() }

// Owner returns the rank whose domain contains q.
func (t *DistTree) Owner(q []float32) int { return t.dt.OwnerOf(q) }

// Rank returns the rank holding this shard.
func (t *DistTree) Rank() int { return t.dt.Rank() }

// Ranks returns the number of shards (cluster ranks).
func (t *DistTree) Ranks() int { return t.dt.Size() }

// Dims returns the point dimensionality.
func (t *DistTree) Dims() int { return t.dt.Dims() }

// Fingerprint returns a cluster-wide content hash for the distributed
// dataset: dims, rank count, and the replicated global partition tree
// (split planes and owner assignment). Every rank of one cluster computes
// the same value — unlike hashing the local shard, which differs per rank —
// so it is what cluster serving reports as the dataset fingerprint and what
// lets a client validate a reconnect landing on any rank of the same
// cluster. Distinct datasets virtually always produce distinct median
// splits, so the partition tree identifies the build without requiring a
// collective over the full point set.
func (t *DistTree) Fingerprint() uint64 {
	h := fnv.New64a()
	var w [24]byte
	binary.LittleEndian.PutUint32(w[0:4], uint32(t.dt.Dims()))
	binary.LittleEndian.PutUint32(w[4:8], uint32(t.dt.Size()))
	h.Write(w[:8])
	for _, n := range t.dt.Global.Nodes {
		binary.LittleEndian.PutUint32(w[0:4], uint32(n.Dim))
		binary.LittleEndian.PutUint32(w[4:8], math.Float32bits(n.Median))
		binary.LittleEndian.PutUint32(w[8:12], uint32(n.Left))
		binary.LittleEndian.PutUint32(w[12:16], uint32(n.Right))
		binary.LittleEndian.PutUint32(w[16:20], uint32(n.Rank))
		h.Write(w[:20])
	}
	return h.Sum64()
}

// RanksWithin appends to out every rank other than exclude whose domain
// intersects the ball of squared radius r2 around q — the paper's §III-B
// step 3, exposed per-query for serving. Pass exclude = -1 to include
// every intersecting rank. Safe for concurrent use.
func (t *DistTree) RanksWithin(q []float32, r2 float32, exclude int, out []int) []int {
	return t.dt.RemoteRanks(q, r2, exclude, out)
}

// SetServingThreads caps the worker threads LocalTree's batched queries use
// (default: GOMAXPROCS). Call before the first LocalTree/NewCluster use;
// once the cached wrapper exists the setting is fixed.
func (t *DistTree) SetServingThreads(n int) { t.serveThreads = n }

// LocalTree returns this rank's local shard wrapped as a single-node Tree
// (pooled searchers, batched queries) — the non-SPMD query surface cluster
// serving runs on. The wrapper is created once and cached; it shares the
// shard's storage, so it must not outlive the DistTree's data. Neighbor IDs
// are the global point ids passed to Build.
func (t *DistTree) LocalTree() *Tree {
	t.localOnce.Do(func() {
		threads := t.serveThreads
		if threads <= 0 {
			threads = runtime.GOMAXPROCS(0)
		}
		t.local = &Tree{t: t.dt.Local, threads: threads}
	})
	return t.local
}

// Query answers k-NN for this rank's query shard (SPMD: every rank calls it
// with its own queries; all ranks must pass the same k). queries is
// row-major; qids labels results (nil = index order). Results come back in
// input order.
func (t *DistTree) Query(queries []float32, qids []int64, k int) ([]Result, *QueryTrace, error) {
	dims := t.dt.Dims()
	if len(queries)%dims != 0 {
		return nil, nil, fmt.Errorf("panda: query buffer not a multiple of dims %d", dims)
	}
	// Non-finite coordinates are rejected inside QueryBatch, where the
	// check rides an existing collective so every rank errors in lockstep —
	// rejecting here, per rank, would strand the other ranks mid-collective.
	return t.dt.QueryBatch(geom.FromCoords(queries, dims), qids, core.QueryOptions{K: k})
}

// PhaseTiming is one phase of a distributed run under the simulated-time
// model: max-over-ranks elapsed, compute-only, communication-only, and the
// communication not hidden by pipelining.
type PhaseTiming struct {
	Name                     string
	Seconds                  float64
	ComputeSeconds           float64
	CommSeconds              float64
	NonOverlappedCommSeconds float64
}

// SimReport is the cost-model timing of a distributed run (see DESIGN.md:
// work and traffic are measured from the real execution; only the clock is
// modeled).
type SimReport struct {
	Phases []PhaseTiming
}

// Total sums the phases selected by filter (nil = all).
func (r *SimReport) Total(filter func(name string) bool) float64 {
	var s float64
	for _, p := range r.Phases {
		if filter == nil || filter(p.Name) {
			s += p.Seconds
		}
	}
	return s
}

// Find returns the named phase.
func (r *SimReport) Find(name string) (PhaseTiming, bool) {
	for _, p := range r.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseTiming{}, false
}

// Phase names appearing in SimReport, matching the paper's Figure 5
// breakdown categories.
var (
	// BuildPhases are the five construction phases of §III-A.
	BuildPhases = []string{
		core.PhaseGlobalTree,
		core.PhaseRedistribute,
		"local kd-tree (data parallel)",
		"local kd-tree (thread parallel)",
		"local kd-tree (SIMD packing)",
	}
	// QueryPhases are the four query phases of §III-B (non-overlapped
	// communication is derived from their comm accounting).
	QueryPhases = []string{
		core.PhaseFindOwner,
		core.PhaseLocalKNN,
		core.PhaseIdentifyRemote,
		core.PhaseRemoteKNN,
	}
)

// IsBuildPhase reports whether a SimReport phase belongs to tree
// construction.
func IsBuildPhase(name string) bool { return containsName(BuildPhases, name) }

// IsQueryPhase reports whether a SimReport phase belongs to querying.
func IsQueryPhase(name string) bool { return containsName(QueryPhases, name) }

func containsName(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// RunCluster executes fn as an SPMD program over ranks in-process ranks
// (each a goroutine with its own shard and threadsPerRank simulated
// threads) and returns the simulated-time report. This is the simulated
// Edison: the algorithm, messages and collectives are real; only the clock
// is modeled.
func RunCluster(ranks, threadsPerRank int, fn func(n *Node) error) (*SimReport, error) {
	recs, err := cluster.Run(ranks, threadsPerRank, func(c *cluster.Comm) error {
		return fn(&Node{comm: c})
	})
	if err != nil {
		return nil, err
	}
	return newSimReport(simtime.Aggregate(simtime.DefaultRates(), recs)), nil
}

func newSimReport(rep simtime.Report) *SimReport {
	out := &SimReport{}
	for _, p := range rep.Phases {
		out.Phases = append(out.Phases, PhaseTiming{
			Name:                     p.Name,
			Seconds:                  p.Seconds,
			ComputeSeconds:           p.ComputeSeconds,
			CommSeconds:              p.CommSeconds,
			NonOverlappedCommSeconds: p.NonOverlappedCommSeconds,
		})
	}
	return out
}

// JoinTCP joins a real multi-process mesh as rank `rank`: addrs lists every
// rank's listen address in rank order, and this process listens on
// addrs[rank] (a port of 0 is not supported here — processes must agree on
// addresses up front). Returns the node and a close function. A failed join
// releases the bound listener before returning, so the port is immediately
// reusable.
func JoinTCP(rank int, addrs []string, threadsPerRank int) (*Node, func() error, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, nil, fmt.Errorf("panda: rank %d out of range for %d addrs", rank, len(addrs))
	}
	ln, err := transport.Listen(addrs[rank])
	if err != nil {
		return nil, nil, err
	}
	tr, err := transport.NewTCP(rank, ln, addrs)
	if err != nil {
		// NewTCP closes ln on its own failure paths; close again here so the
		// port cannot stay bound even if a future NewTCP change misses one.
		ln.Close()
		return nil, nil, err
	}
	if threadsPerRank < 1 {
		threadsPerRank = 1
	}
	comm := cluster.New(tr, simtime.NewRecorder(threadsPerRank))
	return &Node{comm: comm}, tr.Close, nil
}

// JoinTCPListener is JoinTCP for a pre-bound listener (use when ports are
// assigned dynamically and shared out of band, e.g. in tests). Like
// JoinTCP, a failed join closes ln — ownership transfers on call, matching
// Server.Serve semantics.
func JoinTCPListener(rank int, ln net.Listener, addrs []string, threadsPerRank int) (*Node, func() error, error) {
	tr, err := transport.NewTCP(rank, ln, addrs)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	if threadsPerRank < 1 {
		threadsPerRank = 1
	}
	comm := cluster.New(tr, simtime.NewRecorder(threadsPerRank))
	return &Node{comm: comm}, tr.Close, nil
}
