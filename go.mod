module panda

go 1.24
