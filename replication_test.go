package panda

import (
	"encoding/json"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// buildMeshCluster builds a p-rank distributed tree over a loopback mesh
// with the points striped i mod p across ranks, and returns the rank trees
// plus the mesh closers.
func buildMeshCluster(t *testing.T, coords []float32, dims, p int) ([]*DistTree, func()) {
	t.Helper()
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	n := len(coords) / dims
	dts := make([]*DistTree, p)
	closers := make([]func() error, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, closer, err := JoinTCPListener(r, lns[r], addrs, 1)
			if err != nil {
				errs[r] = err
				return
			}
			closers[r] = closer
			var local []float32
			var ids []int64
			for i := r; i < n; i += p {
				local = append(local, coords[i*dims:(i+1)*dims]...)
				ids = append(ids, int64(i))
			}
			dts[r], errs[r] = node.Build(local, dims, ids, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return dts, func() {
		for _, c := range closers {
			if c != nil {
				c()
			}
		}
	}
}

// writeClusterSnapshot persists every rank (collective call) into dir.
func writeClusterSnapshot(t *testing.T, dts []*DistTree, dir string, replication int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(dts))
	for r := range dts {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = dts[r].WriteSnapshotReplicated(dir, replication)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d WriteSnapshotReplicated: %v", r, err)
		}
	}
}

// TestReplicatedSnapshotOpen checks the tentpole's storage half: the
// manifest records the R=2 placement, every rank opens its own shard plus
// its replica shard, and the replica tree answers bit-identically to the
// shard's own rank (it is the same snapshot bytes).
func TestReplicatedSnapshotOpen(t *testing.T) {
	const (
		dims = 3
		n    = 3000
		p    = 3
	)
	rng := rand.New(rand.NewSource(17))
	coords := make([]float32, n*dims)
	for i := range coords {
		coords[i] = rng.Float32() * 100
	}
	dts, closeMesh := buildMeshCluster(t, coords, dims, p)
	defer closeMesh()
	dir := t.TempDir()
	writeClusterSnapshot(t, dts, dir, 2)

	for r := 0; r < p; r++ {
		cs, err := OpenClusterSnapshotReplicated(dir, r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if cs.Replication != 2 || len(cs.ReplicaSets) != p {
			t.Fatalf("rank %d: replication %d, %d replica sets", r, cs.Replication, len(cs.ReplicaSets))
		}
		if len(cs.Missing) != 0 {
			t.Fatalf("rank %d: missing shards %v in a complete directory", r, cs.Missing)
		}
		// Round-robin R=2: rank r holds its own shard plus its predecessor's.
		pred := (r - 1 + p) % p
		rt, ok := cs.Replicas[pred]
		if !ok || len(cs.Replicas) != 1 {
			t.Fatalf("rank %d: replicas %v, want exactly shard %d", r, cs.Replicas, pred)
		}
		// The replica answers bit-identically to the shard's own local tree.
		primary := dts[pred].LocalTree()
		q := make([]float32, dims)
		for i := 0; i < 100; i++ {
			for d := range q {
				q[d] = rng.Float32() * 100
			}
			want := primary.KNN(q, 5)
			got := rt.KNN(q, 5)
			if len(want) != len(got) {
				t.Fatalf("replica of shard %d: %d vs %d neighbors", pred, len(got), len(want))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("replica of shard %d query %d: %+v != %+v", pred, i, got[j], want[j])
				}
			}
		}
		cs.Close()
	}

	// Deleting a replica file demotes it to Missing, not an error — that is
	// the state a re-replicating rank starts from.
	if err := os.Remove(filepath.Join(dir, "rank-0.pnds")); err != nil {
		t.Fatal(err)
	}
	cs, err := OpenClusterSnapshotReplicated(dir, 1)
	if err != nil {
		t.Fatalf("open with a missing replica file: %v", err)
	}
	defer cs.Close()
	if len(cs.Missing) != 1 || cs.Missing[0] != 0 {
		t.Fatalf("missing = %v, want [0]", cs.Missing)
	}
	// Rank 0 itself cannot open at all — its own shard is gone.
	if _, err := OpenClusterSnapshotReplicated(dir, 0); err == nil {
		t.Fatal("rank 0 opened without its own shard file")
	}
}

// TestClusterManifestCompat checks that a pre-replication manifest (no
// replication/replicas fields) reads as the identity placement.
func TestClusterManifestCompat(t *testing.T) {
	m, err := parseClusterManifest([]byte(`{
		"format": "panda-cluster-snapshot", "version": 1,
		"ranks": 3, "dims": 2, "totalPoints": 100
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 1 || len(m.Replicas) != 3 {
		t.Fatalf("replication %d, replicas %v", m.Replication, m.Replicas)
	}
	for s, holders := range m.Replicas {
		if len(holders) != 1 || holders[0] != s {
			t.Fatalf("shard %d holders %v, want identity", s, holders)
		}
	}
}

// TestClusterManifestHostile feeds the parser manifests with corrupt
// replica maps and out-of-range factors.
func TestClusterManifestHostile(t *testing.T) {
	base := func(extra string) []byte {
		return []byte(`{"format": "panda-cluster-snapshot", "version": 1,
			"ranks": 3, "dims": 2, "totalPoints": 100` + extra + `}`)
	}
	cases := map[string][]byte{
		"replication above ranks": base(`, "replication": 4`),
		"negative replication":    base(`, "replication": -1`),
		"short replica map":       base(`, "replicas": [[0],[1]]`),
		"empty holder list":       base(`, "replicas": [[0],[1],[]]`),
		"wrong primary":           base(`, "replicas": [[1,0],[1],[2]]`),
		"holder out of range":     base(`, "replicas": [[0,3],[1],[2]]`),
		"duplicate holder":        base(`, "replicas": [[0,0],[1],[2]]`),
		"zero ranks":              []byte(`{"format": "panda-cluster-snapshot", "version": 1, "ranks": 0, "dims": 2, "totalPoints": 1}`),
		"wrong format":            []byte(`{"format": "something-else", "version": 1, "ranks": 1, "dims": 1, "totalPoints": 1}`),
		"not json":                []byte(`{{{{`),
	}
	for name, data := range cases {
		if _, err := parseClusterManifest(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzClusterManifest throws arbitrary bytes at the manifest parser: no
// panic, and anything accepted must resolve to a valid replica placement.
func FuzzClusterManifest(f *testing.F) {
	f.Add([]byte(`{"format": "panda-cluster-snapshot", "version": 1, "ranks": 3, "dims": 2, "totalPoints": 100}`))
	f.Add([]byte(`{"format": "panda-cluster-snapshot", "version": 1, "ranks": 3, "dims": 2, "totalPoints": 100, "replication": 2}`))
	f.Add([]byte(`{"format": "panda-cluster-snapshot", "version": 1, "ranks": 2, "dims": 4, "totalPoints": 8, "replication": 2, "replicas": [[0,1],[1,0]]}`))
	f.Add([]byte(`{"format": "panda-cluster-snapshot", "version": 1, "ranks": 2, "dims": 4, "totalPoints": 8, "replicas": [[0],[1,0]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[[[[`))
	valid, _ := json.Marshal(clusterManifest{Format: manifestFormat, Version: 1, Ranks: 5, Dims: 3, TotalPoints: 50, Replication: 3})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseClusterManifest(data)
		if err != nil {
			return
		}
		if m.Ranks < 1 || m.Dims < 1 || m.TotalPoints < 0 {
			t.Fatalf("accepted manifest %+v", m)
		}
		if m.Replication < 1 || m.Replication > m.Ranks {
			t.Fatalf("accepted replication %d of %d ranks", m.Replication, m.Ranks)
		}
		if len(m.Replicas) != m.Ranks {
			t.Fatalf("accepted %d replica sets for %d ranks", len(m.Replicas), m.Ranks)
		}
		for s, holders := range m.Replicas {
			if len(holders) < 1 || holders[0] != s {
				t.Fatalf("accepted shard %d holders %v", s, holders)
			}
			seen := map[int]bool{}
			for _, h := range holders {
				if h < 0 || h >= m.Ranks || seen[h] {
					t.Fatalf("accepted shard %d holders %v", s, holders)
				}
				seen[h] = true
			}
		}
	})
}

