package panda

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"panda/internal/snapshot"
)

// buildSnapshotTree builds a deterministic tree for snapshot tests.
func buildSnapshotTree(t *testing.T, n, dims int) (*Tree, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	coords := make([]float32, n*dims)
	for i := range coords {
		coords[i] = rng.Float32()
	}
	tree, err := Build(coords, dims, nil, &BuildOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tree, coords
}

// identicalNeighbors compares two result lists bit-for-bit.
func identicalNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotBitIdentical runs the acceptance workload: a 10k-query mixed
// KNN/radius stream answered bit-identically by the built tree, the mmap'd
// snapshot (OpenSnapshot), and the copying fallback (ReadSnapshot).
func TestSnapshotBitIdentical(t *testing.T) {
	const dims = 3
	built, _ := buildSnapshotTree(t, 30000, dims)
	path := filepath.Join(t.TempDir(), "tree.pnds")
	if err := built.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	opened, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer opened.Close()
	read, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	if bs, os_ := built.Stats(), opened.Stats(); bs != os_ {
		t.Fatalf("stats differ after snapshot: %+v vs %+v", os_, bs)
	}

	rng := rand.New(rand.NewSource(77))
	q := make([]float32, dims)
	for i := 0; i < 10000; i++ {
		for d := range q {
			q[d] = rng.Float32()
		}
		if i%4 == 3 {
			r2 := rng.Float32() * 0.001
			want := built.RadiusSearch(q, r2)
			if got := opened.RadiusSearch(q, r2); !identicalNeighbors(want, got) {
				t.Fatalf("query %d: mmap radius results differ", i)
			}
			if got := read.RadiusSearch(q, r2); !identicalNeighbors(want, got) {
				t.Fatalf("query %d: copy-path radius results differ", i)
			}
			continue
		}
		k := 1 + i%16
		want := built.KNN(q, k)
		if got := opened.KNN(q, k); !identicalNeighbors(want, got) {
			t.Fatalf("query %d: mmap KNN results differ", i)
		}
		if got := read.KNN(q, k); !identicalNeighbors(want, got) {
			t.Fatalf("query %d: copy-path KNN results differ", i)
		}
	}

	// Batched engine over the snapshot tree (exercises searcher pooling,
	// Morton ordering, arena compaction against adopted storage).
	queries := make([]float32, 2048*dims)
	for i := range queries {
		queries[i] = rng.Float32()
	}
	wantB, err := built.KNNBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := opened.KNNBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		if !identicalNeighbors(wantB[i], gotB[i]) {
			t.Fatalf("batch query %d differs", i)
		}
	}
}

// TestSnapshotPreservesIDs checks caller ids survive the round trip.
func TestSnapshotPreservesIDs(t *testing.T) {
	const n, dims = 2000, 2
	rng := rand.New(rand.NewSource(9))
	coords := make([]float32, n*dims)
	for i := range coords {
		coords[i] = rng.Float32()
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)*7 + 1
	}
	built, err := Build(coords, dims, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ids.pnds")
	if err := built.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	for i := 0; i < 100; i++ {
		q := coords[i*dims : (i+1)*dims]
		nb := got.KNN(q, 1)
		if len(nb) != 1 || nb[0].ID != ids[i] || nb[0].Dist2 != 0 {
			t.Fatalf("point %d: self-query returned %+v, want id %d at distance 0", i, nb, ids[i])
		}
	}
}

// TestSnapshotErrors covers the user-facing failure modes.
func TestSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenSnapshot(filepath.Join(dir, "missing.pnds")); err == nil {
		t.Error("OpenSnapshot of a missing file succeeded")
	}
	junk := filepath.Join(dir, "junk.pnds")
	if err := os.WriteFile(junk, []byte("not a snapshot at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(junk); err == nil {
		t.Error("OpenSnapshot of junk bytes succeeded")
	}
	if _, err := ReadSnapshot(junk); err == nil {
		t.Error("ReadSnapshot of junk bytes succeeded")
	}
	// Truncated real snapshot.
	tree, _ := buildSnapshotTree(t, 1000, 3)
	path := filepath.Join(dir, "ok.pnds")
	if err := tree.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.pnds")
	if err := os.WriteFile(trunc, b[:len(b)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(trunc); err == nil {
		t.Error("OpenSnapshot of a truncated file succeeded")
	}
	// Close is idempotent and safe.
	got, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := got.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Single-tree snapshots are not cluster snapshots.
	if _, err := OpenClusterSnapshot(dir, 0); err == nil {
		t.Error("OpenClusterSnapshot without a manifest succeeded")
	}
}

// TestFingerprintStableAcrossSnapshot pins the dataset-identity contract the
// serving handshake depends on: the content fingerprint of a built tree, the
// same tree mmap'd back from a snapshot, the copying loader, and the
// metadata-only inspect path (snapshot.ReadInfo) all agree — and a tree
// built from different data hashes differently even at identical shape.
func TestFingerprintStableAcrossSnapshot(t *testing.T) {
	const dims = 3
	built, _ := buildSnapshotTree(t, 5000, dims)
	path := filepath.Join(t.TempDir(), "tree.pnds")
	if err := built.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}

	fp := built.Fingerprint()
	if fp == 0 {
		t.Fatal("fingerprint of a real tree is zero")
	}
	opened, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if got := opened.Fingerprint(); got != fp {
		t.Fatalf("mmap'd fingerprint %016x != built %016x", got, fp)
	}
	read, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := read.Fingerprint(); got != fp {
		t.Fatalf("copied fingerprint %016x != built %016x", got, fp)
	}
	info, err := snapshot.ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != fp {
		t.Fatalf("inspect fingerprint %016x != built %016x", info.Fingerprint, fp)
	}

	// Same shape, different content: a different seed must hash differently.
	rng := rand.New(rand.NewSource(6))
	coords := make([]float32, 5000*dims)
	for i := range coords {
		coords[i] = rng.Float32()
	}
	other, err := Build(coords, dims, nil, &BuildOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint() == fp {
		t.Fatal("distinct datasets of identical shape share a fingerprint")
	}
}
