package panda

// Benchmarks: one per table/figure of the paper's evaluation (§V), sized so
// `go test -bench=. -benchmem` completes in minutes on one core. These
// exercise the same code paths as cmd/panda-bench; run that binary for the
// full paper-style reports (see EXPERIMENTS.md).

import (
	"testing"

	"panda/internal/baselines"
	"panda/internal/cluster"
	"panda/internal/core"
	"panda/internal/data"
	"panda/internal/geom"
	"panda/internal/kdtree"
	"panda/internal/sample"
)

// benchShard deals points round-robin to one rank.
func benchShard(pts geom.Points, ranks, rank int) (geom.Points, []int64) {
	out := geom.NewPoints(0, pts.Dims)
	var ids []int64
	for i := rank; i < pts.Len(); i += ranks {
		out = out.Append(pts.At(i))
		ids = append(ids, int64(i))
	}
	return out, ids
}

// BenchmarkTable1_DistributedConstruction measures the full distributed
// build (global tree + redistribution + local trees) on a 4-rank simulated
// cluster — the operation Table I times at up to 189B particles.
func BenchmarkTable1_DistributedConstruction(b *testing.B) {
	d := data.Cosmo(100_000, 2016)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(4, 4, func(c *cluster.Comm) error {
			pts, ids := benchShard(d.Points, 4, c.Rank())
			_, err := core.BuildDistributed(c, pts, ids, core.Options{})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_DistributedQuery measures the distributed query pipeline
// (route → local KNN → remote fan-out → merge) at Table I's 10% query load.
func BenchmarkTable1_DistributedQuery(b *testing.B) {
	d := data.Cosmo(100_000, 2016)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(4, 4, func(c *cluster.Comm) error {
			pts, ids := benchShard(d.Points, 4, c.Rank())
			dt, err := core.BuildDistributed(c, pts, ids, core.Options{})
			if err != nil {
				return err
			}
			nq := pts.Len() / 10
			_, _, err = dt.QueryBatch(pts.Slice(0, nq), ids[:nq], core.QueryOptions{K: 5})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_StrongScaling runs the Figure 4 workload at two rank counts
// so the relative cost of doubling the cluster is visible in wall time.
func BenchmarkFig4_StrongScaling(b *testing.B) {
	for _, ranks := range []int{2, 8} {
		b.Run(benchName("ranks", ranks), func(b *testing.B) {
			d := data.Cosmo(80_000, 2016)
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(ranks, 4, func(c *cluster.Comm) error {
					pts, ids := benchShard(d.Points, ranks, c.Rank())
					dt, err := core.BuildDistributed(c, pts, ids, core.Options{})
					if err != nil {
						return err
					}
					nq := pts.Len() / 4
					_, _, err = dt.QueryBatch(pts.Slice(0, nq), ids[:nq], core.QueryOptions{K: 5})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5_WeakScaling keeps points-per-rank fixed while growing the
// cluster (the Figure 5(a) regime).
func BenchmarkFig5_WeakScaling(b *testing.B) {
	for _, ranks := range []int{2, 4} {
		b.Run(benchName("ranks", ranks), func(b *testing.B) {
			d := data.Cosmo(25_000*ranks, 2016)
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(ranks, 4, func(c *cluster.Comm) error {
					pts, ids := benchShard(d.Points, ranks, c.Rank())
					_, err := core.BuildDistributed(c, pts, ids, core.Options{})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6_LocalConstruction measures single-node kd-tree construction
// (Figure 6(a)'s unit of work) on the cosmo_thin-style workload.
func BenchmarkFig6_LocalConstruction(b *testing.B) {
	d := data.Cosmo(200_000, 2016)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Build(d.Points, nil, kdtree.Options{})
	}
}

// BenchmarkFig6_LocalQuery measures the Algorithm 1 query kernel
// (Figure 6(b)'s unit of work); reported per query.
func BenchmarkFig6_LocalQuery(b *testing.B) {
	d := data.Cosmo(200_000, 2016)
	tree := kdtree.Build(d.Points, nil, kdtree.Options{})
	s := tree.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(d.Points.At(i%d.Points.Len()), 5, kdtree.Inf2, nil)
	}
}

// BenchmarkFig7_Construction compares the three construction policies
// (Figure 7(a)).
func BenchmarkFig7_Construction(b *testing.B) {
	d := data.Cosmo(200_000, 2016)
	b.Run("PANDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdtree.Build(d.Points, nil, kdtree.Options{})
		}
	})
	b.Run("FLANN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.BuildFLANN(d.Points, nil, 1)
		}
	})
	b.Run("ANN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.BuildANN(d.Points, nil)
		}
	})
}

// BenchmarkFig7_Query compares per-query cost across the three trees
// (Figure 7(b)).
func BenchmarkFig7_Query(b *testing.B) {
	d := data.Cosmo(200_000, 2016)
	trees := map[string]*kdtree.Tree{
		"PANDA": kdtree.Build(d.Points, nil, kdtree.Options{}),
		"FLANN": baselines.BuildFLANN(d.Points, nil, 1),
		"ANN":   baselines.BuildANN(d.Points, nil),
	}
	for _, name := range []string{"PANDA", "FLANN", "ANN"} {
		b.Run(name, func(b *testing.B) {
			s := trees[name].NewSearcher()
			for i := 0; i < b.N; i++ {
				s.Search(d.Points.At(i%d.Points.Len()), 5, kdtree.Inf2, nil)
			}
		})
	}
}

// BenchmarkTable2_Fig8_SharedTreeQuery measures shared-tree query
// throughput on the SDSS photometry workloads (Figure 8(a), k=10).
func BenchmarkTable2_Fig8_SharedTreeQuery(b *testing.B) {
	for _, gen := range []string{"sdss10", "sdss15"} {
		b.Run(gen, func(b *testing.B) {
			build, _ := data.ByName(gen, 100_000, 2016)
			queries, _ := data.ByName(gen, 10_000, 2017)
			tree := kdtree.Build(build.Points, nil, kdtree.Options{})
			s := tree.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Search(queries.Points.At(i%queries.Points.Len()), 10, kdtree.Inf2, nil)
			}
		})
	}
}

// BenchmarkFig8c_DistributedQueryKNL runs the distributed-tree KNL scaling
// workload (Figure 8(c)) at 8 simulated nodes.
func BenchmarkFig8c_DistributedQueryKNL(b *testing.B) {
	d := data.Cosmo(100_000, 2016)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(8, 4, func(c *cluster.Comm) error {
			pts, ids := benchShard(d.Points, 8, c.Rank())
			dt, err := core.BuildDistributed(c, pts, ids, core.Options{})
			if err != nil {
				return err
			}
			nq := pts.Len() / 2
			_, _, err = dt.QueryBatch(pts.Slice(0, nq), ids[:nq], core.QueryOptions{K: 10})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScience_Classification measures the Daya Bay classification
// pipeline end to end (§V-C) per classified record.
func BenchmarkScience_Classification(b *testing.B) {
	d := data.DayaBay(50_000, 2016)
	tree := kdtree.Build(d.Points.Slice(0, 40_000), nil, kdtree.Options{})
	s := tree.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := 40_000 + i%10_000
		nbrs, _ := s.Search(d.Points.At(q), 5, kdtree.Inf2, nil)
		MajorityVote(nbrs, func(id int64) uint8 { return d.Labels[id] })
	}
}

// BenchmarkAblationBinSearch compares the paper's two-level sub-interval
// scan against binary search for histogram bin location (§III-A1's 42%).
func BenchmarkAblationBinSearch(b *testing.B) {
	rng := data.NewRNG(7)
	vals := make([]float32, 1024)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	iv := sample.NewIntervals(vals)
	probes := make([]float32, 4096)
	for i := range probes {
		probes[i] = rng.Float32()
	}
	b.Run("Scan", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += iv.LocateScan(probes[i%len(probes)])
		}
		_ = sink
	})
	b.Run("Binary", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += iv.LocateBinary(probes[i%len(probes)])
		}
		_ = sink
	})
}

// BenchmarkAblationBucketSize sweeps leaf sizes around the paper's best
// (32), measuring the query side where the tradeoff lives.
func BenchmarkAblationBucketSize(b *testing.B) {
	d := data.Cosmo(200_000, 2016)
	for _, bs := range []int{8, 32, 128} {
		b.Run(benchName("bucket", bs), func(b *testing.B) {
			tree := kdtree.Build(d.Points, nil, kdtree.Options{BucketSize: bs})
			s := tree.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Search(d.Points.At(i%d.Points.Len()), 5, kdtree.Inf2, nil)
			}
		})
	}
}

// BenchmarkAblationSplitDim compares query cost under the two
// split-dimension policies on silent-channel detector data (§III-A1's 43%).
func BenchmarkAblationSplitDim(b *testing.B) {
	d := data.DayaBay(100_000, 2016)
	for _, pol := range []sample.SplitPolicy{sample.MaxVariance, sample.MaxRange} {
		b.Run(pol.String(), func(b *testing.B) {
			tree := kdtree.Build(d.Points, nil, kdtree.Options{SplitPolicy: pol})
			s := tree.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Search(d.Points.At(i%d.Points.Len()), 5, kdtree.Inf2, nil)
			}
		})
	}
}

// BenchmarkStrawman_LocalTreesEverywhere prices §I's no-redistribution
// baseline against PANDA's global tree on the same data and cluster.
func BenchmarkStrawman_LocalTreesEverywhere(b *testing.B) {
	d := data.Uniform(40_000, 3, 2016)
	b.Run("PANDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := cluster.Run(4, 2, func(c *cluster.Comm) error {
				pts, ids := benchShard(d.Points, 4, c.Rank())
				dt, err := core.BuildDistributed(c, pts, ids, core.Options{})
				if err != nil {
					return err
				}
				nq := pts.Len() / 10
				_, _, err = dt.QueryBatch(pts.Slice(0, nq), ids[:nq], core.QueryOptions{K: 5})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LocalTrees", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := cluster.Run(4, 2, func(c *cluster.Comm) error {
				pts, ids := benchShard(d.Points, 4, c.Rank())
				nq := pts.Len() / 10
				_, _, err := baselines.RunLocalTreesKNN(c, pts, ids, pts.Slice(0, nq), ids[:nq], 5)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
