// Serving walkthrough: start the PANDA serving layer in-process on a
// loopback port, connect a handful of concurrent clients, and let dynamic
// micro-batching turn their independent single queries into batched engine
// calls. The same server is what cmd/panda-serve runs standalone; the same
// client is what any external process would use via panda.Dial.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"panda"
	"panda/internal/server"
)

func main() {
	const (
		n       = 200_000
		dims    = 3
		clients = 16
		queries = 200 // per client
		k       = 5
	)
	coords, _, _, err := panda.GenerateDataset("uniform", n, 42)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := panda.Build(coords, dims, nil, &panda.BuildOptions{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Start the server on a loopback port; micro-batch up to 64 queries,
	// lingering at most 200µs for stragglers.
	srv := server.New(tree, server.Config{MaxBatch: 64, MaxLinger: 200 * time.Microsecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("serving %d points (%d-d) on %s\n", tree.Len(), dims, addr)

	// Each client issues single-query KNN calls from its own goroutine —
	// the worst case for a batched engine, and exactly what the dispatcher
	// coalesces back into KNNBatchFlat calls.
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := panda.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			q := make([]float32, dims)
			for i := 0; i < queries; i++ {
				base := ((c*queries + i) * dims) % (n * dims)
				copy(q, coords[base:base+dims])
				nbrs, err := cl.KNN(q, k)
				if err != nil {
					log.Fatal(err)
				}
				if len(nbrs) != k || nbrs[0].Dist2 != 0 {
					log.Fatalf("client %d query %d: bad answer %v", c, i, nbrs)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := clients * queries
	fmt.Printf("%d clients × %d single-query KNN calls: %d queries in %v (%.0f µs/query end-to-end)\n",
		clients, queries, total, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(total))

	// One client can also ship an explicit batch in a single request.
	cl, err := panda.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	batch := coords[:50*dims]
	res, err := cl.KNNBatch(batch, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch request: %d queries answered, first neighbor of query 0 is id %d at d²=%g\n",
		len(res), res[0][0].ID, res[0][0].Dist2)

	nbrs, err := cl.RadiusSearch(coords[:dims], 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radius search: %d points within d²<0.001 of point 0\n", len(nbrs))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and shut down")
}
