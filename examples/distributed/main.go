// Distributed-over-TCP: run PANDA's full distributed build + query with
// ranks talking over real TCP sockets (loopback). Each rank lives in its
// own goroutine here for convenience; the wire path is identical when ranks
// are separate OS processes or separate hosts (see cmd/panda-node).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"panda"
)

func main() {
	const (
		ranks = 4
		n     = 100_000
		k     = 5
	)
	coords, dims, _, err := panda.GenerateDataset("plasma", n, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plasma dataset: %d particles, %d-D; %d TCP ranks on loopback\n", n, dims, ranks)

	// Bind every rank's listener first so addresses are known.
	lns := make([]net.Listener, ranks)
	addrs := make([]string, ranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	fmt.Printf("mesh addresses: %v\n", addrs)

	var wg sync.WaitGroup
	errs := make([]error, ranks)
	checked := make([]int, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = runRank(r, lns[r], addrs, coords, dims, n, k, &checked[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}
	total := 0
	for _, c := range checked {
		total += c
	}
	fmt.Printf("all ranks verified their results: %d queries, every one found itself at distance 0\n", total)
}

func runRank(rank int, ln net.Listener, addrs []string, coords []float32, dims, n, k int, checked *int) error {
	node, closeFn, err := panda.JoinTCPListener(rank, ln, addrs, 2)
	if err != nil {
		return err
	}
	defer closeFn()

	ranks := len(addrs)
	var shard []float32
	var ids []int64
	for i := rank; i < n; i += ranks {
		shard = append(shard, coords[i*dims:(i+1)*dims]...)
		ids = append(ids, int64(i))
	}
	dt, err := node.Build(shard, dims, ids, nil)
	if err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("rank 0: distributed tree built; global levels=%d, local points=%d\n",
			dt.GlobalLevels(), dt.LocalLen())
	}

	nq := 2000
	res, trace, err := dt.Query(shard[:nq*dims], ids[:nq], k)
	if err != nil {
		return err
	}
	for i, r := range res {
		if len(r.Neighbors) != k {
			return fmt.Errorf("query %d returned %d neighbors", i, len(r.Neighbors))
		}
		// Query points are dataset points: nearest neighbor is itself.
		if r.Neighbors[0].ID != r.QID || r.Neighbors[0].Dist2 != 0 {
			return fmt.Errorf("query %d: expected self at distance 0, got %v", i, r.Neighbors[0])
		}
	}
	*checked = len(res)
	if rank == 0 {
		fmt.Printf("rank 0: %d queries answered; %d consulted remote ranks (%d remote requests)\n",
			trace.Owned, trace.SentRemote, trace.RemoteRequests)
	}
	return nil
}
