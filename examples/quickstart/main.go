// Quickstart: build a kd-tree over a million uniform 3-D points and answer
// a few thousand exact k-NN queries with the single-node API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"panda"
)

func main() {
	const (
		n  = 1_000_000
		nq = 5_000
		k  = 5
	)
	coords, dims, _, err := panda.GenerateDataset("uniform", n, 42)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	tree, err := panda.Build(coords, dims, nil, &panda.BuildOptions{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	s := tree.Stats()
	fmt.Printf("built kd-tree: %d points, height %d, %d leaves (mean bucket %.1f) in %v\n",
		s.Points, s.Height, s.Leaves, s.MeanBucket, buildTime)

	queries := coords[:nq*dims]
	start = time.Now()
	results, err := tree.KNNBatch(queries, k)
	if err != nil {
		log.Fatal(err)
	}
	queryTime := time.Since(start)
	fmt.Printf("answered %d queries (k=%d) in %v (%.0f queries/s)\n",
		nq, k, queryTime, float64(nq)/queryTime.Seconds())

	// Each query point is its own nearest neighbor at distance 0.
	self := 0
	for i, nbrs := range results {
		if len(nbrs) == k && nbrs[0].ID == int64(i) && nbrs[0].Dist2 == 0 {
			self++
		}
	}
	fmt.Printf("sanity: %d/%d queries found themselves first\n", self, nq)
	fmt.Printf("example neighbors of query 0: %v\n", results[0])
}
