// Simulation timesteps: the workload §III motivates the construction/query
// tradeoff with — "in typical simulation scenarios, the particles move at
// the end of each iteration, and one would like to reconstruct a new
// kd-tree every few iterations to keep queries fast."
//
// This example advances a toy N-body-ish system (particles drift along
// their velocities), answers a k-NN density query wave each step, and
// rebuilds the tree only every R steps. It reports how query cost degrades
// as the tree goes stale and how rebuild amortization plays out — the
// reason PANDA invests in *fast construction*, not just fast queries.
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"
	"time"

	"panda"
)

func main() {
	const (
		n       = 200_000
		steps   = 12
		rebuild = 4 // rebuild the tree every R steps
		k       = 8
		dt      = 0.002
	)
	coords, dims, _, err := panda.GenerateDataset("cosmo", n, 11)
	if err != nil {
		log.Fatal(err)
	}
	// Velocities: random drift plus a coherent bulk flow.
	vel := make([]float32, len(coords))
	vcoords, _, _, _ := panda.GenerateDataset("gaussian", n, 12)
	for i := range vel {
		vel[i] = vcoords[i]*0.3 + 0.1
	}

	fmt.Printf("simulating %d particles for %d steps (rebuild every %d)\n", n, steps, rebuild)
	fmt.Printf("%5s %12s %12s %14s\n", "step", "rebuild", "query-time", "mean r_k drift")

	var tree *panda.Tree
	var baseline float64
	for step := 0; step < steps; step++ {
		var rebuildTime time.Duration
		if step%rebuild == 0 {
			start := time.Now()
			tree, err = panda.Build(coords, dims, nil, &panda.BuildOptions{Threads: 4})
			if err != nil {
				log.Fatal(err)
			}
			rebuildTime = time.Since(start)
		}

		// Query wave: k-th neighbor distance for a sample of particles.
		// NOTE: between rebuilds the tree indexes *stale* coordinates, so
		// r_k estimates drift — the quality/cost tradeoff of the rebuild
		// cadence.
		nq := 5_000
		start := time.Now()
		var sumRK float64
		for i := 0; i < nq; i++ {
			q := coords[(i*37%n)*dims : (i*37%n+1)*dims]
			nbrs := tree.KNN(q, k)
			sumRK += float64(nbrs[len(nbrs)-1].Dist2)
		}
		queryTime := time.Since(start)
		meanRK := sumRK / float64(nq)
		if step == 0 {
			baseline = meanRK
		}

		rb := "-"
		if rebuildTime > 0 {
			rb = rebuildTime.Round(time.Millisecond).String()
		}
		fmt.Printf("%5d %12s %12s %13.2f%%\n",
			step, rb, queryTime.Round(time.Millisecond), 100*(meanRK/baseline-1))

		// Advance particles (periodic unit box).
		for i := range coords {
			coords[i] += vel[i] * dt
			if coords[i] >= 1 {
				coords[i] -= 1
			}
			if coords[i] < 0 {
				coords[i] += 1
			}
		}
	}
	fmt.Println("\nstale trees answer against old positions: r_k drifts until the next rebuild;")
	fmt.Println("fast construction keeps the rebuild cadence cheap (the paper's §III tradeoff).")
}
