// Cosmology: classify particles of a clustered N-body snapshot into
// halo / filament / void populations using k-NN density estimation — the
// halo-finding analysis the paper's §II motivates, run on the distributed
// tree over a simulated 8-rank cluster.
//
// The k-NN density proxy is the classic 1/r_k^d estimator: particles whose
// distance to their k-th neighbor is small sit in dense structure (halos),
// intermediate ones trace filaments, and distant ones float in voids.
//
//	go run ./examples/cosmology
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"sync"

	"panda"
)

func main() {
	const (
		n     = 400_000
		ranks = 8
		k     = 8
	)
	coords, dims, _, err := panda.GenerateDataset("cosmo", n, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cosmology snapshot: %d particles, %d-D\n", n, dims)

	// Every rank queries the k-th neighbor distance of its own shard.
	var mu sync.Mutex
	rk := make([]float32, n) // distance to k-th neighbor per particle
	rep, err := panda.RunCluster(ranks, 4, func(node *panda.Node) error {
		var shard []float32
		var ids []int64
		for i := node.Rank(); i < n; i += ranks {
			shard = append(shard, coords[i*dims:(i+1)*dims]...)
			ids = append(ids, int64(i))
		}
		dt, err := node.Build(shard, dims, ids, nil)
		if err != nil {
			return err
		}
		// k+1 because each particle finds itself at distance 0.
		res, _, err := dt.Query(shard, ids, k+1)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, r := range res {
			last := r.Neighbors[len(r.Neighbors)-1]
			rk[r.QID] = float32(math.Sqrt(float64(last.Dist2)))
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Density-quantile classification: the densest 40% of particles are
	// halo members, the next 30% filament, the rest void — mirroring the
	// mass fractions cosmological simulations report.
	sorted := append([]float32(nil), rk...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	haloCut := sorted[int(0.40*float64(n))]
	filCut := sorted[int(0.70*float64(n))]
	var halo, fil, void int
	for _, r := range rk {
		switch {
		case r <= haloCut:
			halo++
		case r <= filCut:
			fil++
		default:
			void++
		}
	}
	fmt.Printf("k-NN density classification (k=%d):\n", k)
	fmt.Printf("  halo members:     %8d (r_k ≤ %.5f)\n", halo, haloCut)
	fmt.Printf("  filament members: %8d (r_k ≤ %.5f)\n", fil, filCut)
	fmt.Printf("  void particles:   %8d\n", void)

	// Structure check: mean r_k in the halo class should be far below the
	// void class (clustered data), which would not hold on uniform data.
	fmt.Printf("\nsimulated cluster time (%d ranks × 4 threads):\n", ranks)
	fmt.Printf("  construction: %.3fs  querying: %.3fs\n",
		rep.Total(panda.IsBuildPhase), rep.Total(panda.IsQueryPhase))
}
