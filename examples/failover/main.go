// Failover walkthrough: an R=2 replicated PANDA serving cluster surviving
// the loss of a rank with zero wrong answers and zero client-visible
// errors, then healing itself.
//
// The demo builds a 4-rank distributed tree, persists it as a replicated
// cluster snapshot (each shard's file is assigned to its own rank plus one
// cyclic successor in the manifest), warm-starts a serving cluster from the
// directory, and then kills one rank mid-workload. Queries owned by the
// dead rank's shard fail over to its replica — the replica mmaps the same
// snapshot bytes, so every answer stays bit-identical to a single tree over
// the whole dataset. In the background the surviving ranks notice the death
// by heartbeat, and the next rank in the placement chain streams itself a
// copy of the under-replicated shard (chunked, CRC-checked), restoring the
// replication factor without a restart.
//
// For demonstration the "ranks" run as goroutines in this process, but
// everything between them is real networking over loopback TCP. The same
// flow as separate OS processes is `panda-serve -cluster -snapshot dir`
// (replication is in the manifest) plus `panda-serve -cluster -join` for
// replacement ranks; see cmd/panda-serve.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"panda"
	"panda/internal/server"
)

func main() {
	const (
		n      = 60_000
		dims   = 3
		ranks  = 4
		k      = 5
		victim = 1
	)
	coords, _, _, err := panda.GenerateDataset("uniform", n, 42)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := panda.Build(coords, dims, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Build once, snapshot with replication. ---
	dir, err := os.MkdirTemp("", "panda-failover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dts, closers := buildCluster(coords, dims, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := dts[r].WriteSnapshotReplicated(dir, 2); err != nil {
				log.Fatalf("rank %d: snapshot: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	for _, cl := range closers {
		cl()
	}
	for _, dt := range dts {
		dt.Close()
	}
	fmt.Printf("wrote R=2 replicated snapshot (%d ranks) into %s\n", ranks, dir)

	// --- Warm-start a replicated serving cluster from the directory. ---
	serveAddrs := make([]string, ranks)
	serveLns := make([]net.Listener, ranks)
	for r := range serveLns {
		if serveLns[r], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		serveAddrs[r] = serveLns[r].Addr().String()
	}
	servers := make([]*server.Server, ranks)
	for r := 0; r < ranks; r++ {
		cs, err := panda.OpenClusterSnapshotReplicated(dir, r)
		if err != nil {
			log.Fatalf("rank %d: open: %v", r, err)
		}
		defer cs.Close()
		servers[r], err = server.NewCluster(cs.Tree, server.ClusterConfig{
			Config:            server.Config{MaxBatch: 64, MaxLinger: 200 * time.Microsecond},
			ServeAddrs:        serveAddrs,
			TotalPoints:       n,
			ReplicaSets:       cs.ReplicaSets,
			Replicas:          cs.Replicas,
			SnapshotDir:       dir,
			HeartbeatInterval: 100 * time.Millisecond,
			FailThreshold:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		go servers[r].Serve(serveLns[r])
		fmt.Printf("  rank %d serves its own shard + a replica of shard %d\n", r, (r+ranks-1)%ranks)
	}

	// --- Workload against the survivors; kill the victim mid-flight. ---
	fmt.Printf("\nrunning verified workload, killing rank %d mid-flight...\n", victim)
	killed := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		// Kill -9 equivalent: no drain, connections just die.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		servers[victim].Shutdown(ctx)
		close(killed)
	}()

	const perClient = 4000
	start := time.Now()
	var checked int64
	var mu sync.Mutex
	for c := 0; c < ranks; c++ {
		if c == victim {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := panda.DialRetry(serveAddrs[c], panda.DefaultRetry)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			q := make([]float32, dims)
			for i := 0; i < perClient; i++ {
				for d := range q {
					q[d] = rng.Float32()
				}
				got, err := cl.KNN(q, k)
				if err != nil {
					log.Fatalf("client %d query %d: %v (failover must be invisible)", c, i, err)
				}
				if !same(got, ref.KNN(q, k)) {
					log.Fatalf("client %d query %d: answer differs from the single tree", c, i)
				}
			}
			mu.Lock()
			checked += perClient
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	<-killed
	fmt.Printf("%d queries verified bit-identical across the kill in %v — zero errors\n",
		checked, time.Since(start).Round(time.Millisecond))

	// --- The cluster heals: the next rank in the chain pulls the shard. ---
	puller := (victim + 2) % ranks
	source := (victim + 1) % ranks
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := servers[source].Stats()
		if st.ReplicationBytes > 0 {
			fmt.Printf("re-replication: rank %d streamed %d snapshot bytes of shard %d to rank %d\n",
				source, st.ReplicationBytes, victim, puller)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("re-replication did not run")
		}
		time.Sleep(50 * time.Millisecond)
	}
	for r, srv := range servers {
		if r == victim {
			continue
		}
		st := srv.Stats()
		fmt.Printf("  rank %d: %d queries, %d failovers, %d peer failures\n", r, st.Queries, st.Failovers, st.PeerFailures)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for r, srv := range servers {
		if r == victim {
			continue
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
	}
	fmt.Println("survivors drained; bye")
}

// buildCluster builds the distributed tree over a loopback mesh, striping
// points round-robin with global indices as ids.
func buildCluster(coords []float32, dims, ranks int) ([]*panda.DistTree, []func() error) {
	n := len(coords) / dims
	meshLns := make([]net.Listener, ranks)
	meshAddrs := make([]string, ranks)
	var err error
	for r := range meshLns {
		if meshLns[r], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		meshAddrs[r] = meshLns[r].Addr().String()
	}
	dts := make([]*panda.DistTree, ranks)
	closers := make([]func() error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, closeMesh, err := panda.JoinTCPListener(r, meshLns[r], meshAddrs, 1)
			if err != nil {
				log.Fatalf("rank %d: join: %v", r, err)
			}
			closers[r] = closeMesh
			var shard []float32
			var ids []int64
			for i := r; i < n; i += ranks {
				shard = append(shard, coords[i*dims:(i+1)*dims]...)
				ids = append(ids, int64(i))
			}
			if dts[r], err = node.Build(shard, dims, ids, nil); err != nil {
				log.Fatalf("rank %d: build: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	return dts, closers
}

func same(a, b []panda.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
