// Cluster-serving walkthrough: a 4-rank sharded PANDA cluster serving
// external clients — the paper's distributed query pipeline (owner routing,
// local KNN, bounded remote-candidate exchange, top-k merge) driven by
// ordinary TCP clients instead of SPMD collectives.
//
// For demonstration the four "ranks" run as goroutines in this process,
// but everything between them is real networking: they join a loopback TCP
// mesh (panda.JoinTCPListener) to build the distributed tree, then each
// rank serves the client protocol on its own port and the ranks forward
// queries and exchange remote candidates over those ports. Running the
// ranks as separate OS processes instead is exactly `panda-serve -cluster`
// (see cmd/panda-serve).
//
//	go run ./examples/cluster-serving
//
// The example connects one client per rank, sends a mixed KNN/radius
// workload, and cross-checks every answer bit-for-bit against a single
// tree built over the union of the shards.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"panda"
	"panda/internal/server"
)

func main() {
	const (
		n     = 100_000
		dims  = 3
		ranks = 4
		k     = 5
	)
	coords, _, _, err := panda.GenerateDataset("uniform", n, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: one tree over the whole dataset. Neighbor ids in the
	// cluster are global point indices, so answers must match exactly.
	ref, err := panda.Build(coords, dims, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Build phase: every rank joins the mesh and builds its shard. ---
	meshLns := make([]net.Listener, ranks)
	meshAddrs := make([]string, ranks)
	for r := range meshLns {
		if meshLns[r], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		meshAddrs[r] = meshLns[r].Addr().String()
	}
	dts := make([]*panda.DistTree, ranks)
	closers := make([]func() error, ranks)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, closeMesh, err := panda.JoinTCPListener(r, meshLns[r], meshAddrs, 1)
			if err != nil {
				log.Fatalf("rank %d: join: %v", r, err)
			}
			closers[r] = closeMesh
			// Shard: stripe points round-robin, ids = global indices.
			var shard []float32
			var ids []int64
			for i := r; i < n; i += ranks {
				shard = append(shard, coords[i*dims:(i+1)*dims]...)
				ids = append(ids, int64(i))
			}
			if dts[r], err = node.Build(shard, dims, ids, nil); err != nil {
				log.Fatalf("rank %d: build: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	fmt.Printf("built %d-rank distributed tree over %d points in %v\n",
		ranks, n, time.Since(start).Round(time.Millisecond))
	for r, dt := range dts {
		fmt.Printf("  rank %d owns %d points (global tree: %d levels)\n", r, dt.LocalLen(), dt.GlobalLevels())
	}

	// --- Serve phase: every rank accepts external clients. ---
	serveAddrs := make([]string, ranks)
	serveLns := make([]net.Listener, ranks)
	for r := range serveLns {
		if serveLns[r], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		serveAddrs[r] = serveLns[r].Addr().String()
	}
	servers := make([]*server.Server, ranks)
	for r := 0; r < ranks; r++ {
		servers[r], err = server.NewCluster(dts[r], server.ClusterConfig{
			Config:      server.Config{MaxBatch: 64, MaxLinger: 200 * time.Microsecond},
			ServeAddrs:  serveAddrs,
			TotalPoints: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		go servers[r].Serve(serveLns[r])
	}
	fmt.Printf("serving on %v\n", serveAddrs)

	// --- Client workload: one client per rank, mixed KNN + radius. ---
	const perClient = 1000
	start = time.Now()
	var checked, forwarded int64
	var mu sync.Mutex
	for c := 0; c < ranks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := panda.DialCluster(serveAddrs[c:]) // any rank answers
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			q := make([]float32, dims)
			var myChecked, myForwarded int64
			for i := 0; i < perClient; i++ {
				for d := range q {
					q[d] = rng.Float32()
				}
				if i%10 == 9 {
					r2 := rng.Float32() * 0.001
					got, err := cl.RadiusSearch(q, r2)
					if err != nil {
						log.Fatalf("client %d: radius: %v", c, err)
					}
					want := ref.RadiusSearch(q, r2)
					if !same(got, want) {
						log.Fatalf("client %d: radius mismatch", c)
					}
				} else {
					got, err := cl.KNN(q, k)
					if err != nil {
						log.Fatalf("client %d: KNN: %v", c, err)
					}
					if !same(got, ref.KNN(q, k)) {
						log.Fatalf("client %d: KNN mismatch at query %d", c, i)
					}
					if dts[0].Owner(q) != c {
						myForwarded++
					}
				}
				myChecked++
			}
			mu.Lock()
			checked += myChecked
			forwarded += myForwarded
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d queries answered and verified bit-identical to the union tree (%d forwarded to owner ranks)\n",
		checked, forwarded)
	fmt.Printf("%.1f µs/query end-to-end across the cluster\n",
		float64(elapsed.Microseconds())/float64(checked))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
	}
	for _, cl := range closers {
		cl()
	}
	fmt.Println("cluster drained; bye")
}

func same(a, b []panda.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
