// Example: snapshot persistence and warm start.
//
// Builds a kd-tree over a synthetic cosmology dataset, writes it to a PNDS
// snapshot, then stands the tree back up two ways — the zero-copy mmap path
// (OpenSnapshot) and the portable copying path (ReadSnapshot) — and shows
// that both answer queries bit-identically to the original at a fraction
// of the build cost. This is the `panda-serve -snapshot` warm start in
// miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"panda"
)

func main() {
	const n, dims, k = 200_000, 3, 8
	coords, pdims, _, err := panda.GenerateDataset("cosmo", n, 1)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	built, err := panda.Build(coords, pdims, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("cold build: %d points in %v\n", built.Len(), buildTime.Round(time.Millisecond))

	dir, err := os.MkdirTemp("", "panda-warmstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cosmo.pnds")

	start = time.Now()
	if err := built.WriteSnapshot(path); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("snapshot:   %s (%.1f MB) written in %v\n", filepath.Base(path),
		float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	warm, err := panda.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	defer warm.Close()
	openTime := time.Since(start)
	fmt.Printf("warm start: mmap'd zero-copy in %v (%.0fx faster than building)\n",
		openTime.Round(time.Microsecond), float64(buildTime)/float64(openTime))

	copied, err := panda.ReadSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}

	// Every path answers identically.
	rng := rand.New(rand.NewSource(2))
	q := make([]float32, dims)
	checked := 0
	for i := 0; i < 5000; i++ {
		for d := range q {
			q[d] = rng.Float32()
		}
		want := built.KNN(q, k)
		for _, tree := range []*panda.Tree{warm, copied} {
			got := tree.KNN(q, k)
			if len(got) != len(want) {
				log.Fatalf("query %d: %d vs %d neighbors", i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					log.Fatalf("query %d neighbor %d: %+v vs %+v", i, j, got[j], want[j])
				}
			}
		}
		checked++
	}
	fmt.Printf("verified:   %d queries bit-identical across built, mmap, and copy trees\n", checked)
}
