// Daya Bay: reproduce the paper's science result (§V-C) — k-NN majority-
// vote classification of raw detector records into 3 physicist-annotated
// event classes, reporting accuracy (the paper observed 87%).
//
// Records are the 10-D autoencoder-style embeddings of detector snapshots;
// the distributed tree is built over the labeled training split on a
// simulated 4-rank cluster and every held-out record is classified by its
// k=5 nearest training neighbors.
//
//	go run ./examples/dayabay
package main

import (
	"fmt"
	"log"
	"sync"

	"panda"
)

func main() {
	const (
		n      = 200_000
		nTrain = 160_000
		ranks  = 4
		k      = 5
	)
	coords, dims, labels, err := panda.GenerateDataset("dayabay", n, 2016)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Daya Bay records: %d total, %d-D, 3 classes\n", n, dims)
	fmt.Printf("train/test split: %d / %d\n", nTrain, n-nTrain)

	// Distribute training records across ranks; each rank classifies a
	// shard of the test records.
	type vote struct {
		qid  int64
		pred uint8
	}
	var mu sync.Mutex
	var votes []vote
	rep, err := panda.RunCluster(ranks, 2, func(node *panda.Node) error {
		var shard []float32
		var ids []int64
		for i := node.Rank(); i < nTrain; i += ranks {
			shard = append(shard, coords[i*dims:(i+1)*dims]...)
			ids = append(ids, int64(i))
		}
		dt, err := node.Build(shard, dims, ids, nil)
		if err != nil {
			return err
		}
		var queries []float32
		var qids []int64
		for i := nTrain + node.Rank(); i < n; i += ranks {
			queries = append(queries, coords[i*dims:(i+1)*dims]...)
			qids = append(qids, int64(i))
		}
		res, _, err := dt.Query(queries, qids, k)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, r := range res {
			pred := panda.MajorityVote(r.Neighbors, func(id int64) uint8 { return labels[id] })
			votes = append(votes, vote{qid: r.QID, pred: pred})
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	perClass := [3][2]int{} // [class]{correct, total}
	for _, v := range votes {
		truth := labels[v.qid]
		perClass[truth][1]++
		if v.pred == truth {
			correct++
			perClass[truth][0]++
		}
	}
	acc := 100 * float64(correct) / float64(len(votes))
	fmt.Printf("\nk-NN classification accuracy (k=%d): %.1f%%  (paper: 87%%)\n", k, acc)
	for c, pc := range perClass {
		fmt.Printf("  class %d: %6d/%6d correct (%.1f%%)\n", c, pc[0], pc[1],
			100*float64(pc[0])/float64(pc[1]))
	}
	fmt.Printf("\nsimulated cluster time: build %.3fs, query %.3fs\n",
		rep.Total(panda.IsBuildPhase), rep.Total(panda.IsQueryPhase))
}
