package panda

// BenchmarkBuildParallel is the A/B suite behind BENCH_build.json: tree
// construction wall-clock at 1/2/4/8 threads on the two standing benchmark
// workloads (cosmo3d 200k and dayabay10d 100k). Use the interleaved-median
// methodology from PR 1: -count 3 (or more) and compare medians of the
// alternating runs, since the shared-vCPU hosts are noisy.
//
// Real parallelism is min(threads, GOMAXPROCS); on a single-core host every
// sub-benchmark measures the same sequential schedule (the differential
// tests prove the output is byte-identical either way).

import (
	"fmt"
	"runtime"
	"testing"
)

const buildBenchDayaBayPoints = 100_000

func benchBuildWorkloads(b *testing.B) map[string]struct {
	coords []float32
	dims   int
} {
	b.Helper()
	out := make(map[string]struct {
		coords []float32
		dims   int
	})
	for _, w := range []struct {
		key, gen string
		n        int
	}{
		{"cosmo3d-200k", "cosmo", snapshotBenchPoints},
		{"dayabay10d-100k", "dayabay", buildBenchDayaBayPoints},
	} {
		coords, dims, _, err := GenerateDataset(w.gen, w.n, 1)
		if err != nil {
			b.Fatal(err)
		}
		out[w.key] = struct {
			coords []float32
			dims   int
		}{coords, dims}
	}
	return out
}

func BenchmarkBuildParallel(b *testing.B) {
	workloads := benchBuildWorkloads(b)
	for _, key := range []string{"cosmo3d-200k", "dayabay10d-100k"} {
		w := workloads[key]
		n := len(w.coords) / w.dims
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", key, threads), func(b *testing.B) {
				b.ReportMetric(float64(min(threads, runtime.GOMAXPROCS(0))), "real-workers")
				for i := 0; i < b.N; i++ {
					tree, err := Build(w.coords, w.dims, nil, &BuildOptions{Threads: threads})
					if err != nil {
						b.Fatal(err)
					}
					if tree.Len() != n {
						b.Fatal("short build")
					}
				}
			})
		}
	}
}
