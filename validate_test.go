package panda

import (
	"math"
	"testing"
)

// TestNonFiniteQueryRejected covers every public query entry point against
// NaN/±Inf inputs: a NaN coordinate makes every pruning comparison in the
// kd-tree kernels false, so before these guards the tree silently returned
// wrong or empty results.
func TestNonFiniteQueryRejected(t *testing.T) {
	coords := []float32{
		0, 0, 0,
		1, 0, 0,
		0, 1, 0,
		1, 1, 1,
	}
	tree, err := Build(coords, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	bads := [][]float32{
		{nan, 0, 0},
		{0, inf, 0},
		{0, 0, float32(math.Inf(-1))},
	}
	for _, q := range bads {
		if got := tree.KNN(q, 2); got != nil {
			t.Fatalf("KNN(%v) = %v, want nil", q, got)
		}
		if got := tree.KNNInto(q, 2, nil); got != nil {
			t.Fatalf("KNNInto(%v) = %v, want nil", q, got)
		}
		if got := tree.RadiusSearch(q, 1); got != nil {
			t.Fatalf("RadiusSearch(%v) = %v, want nil", q, got)
		}
		if got := tree.CountWithin(q, 1); got != 0 {
			t.Fatalf("CountWithin(%v) = %d, want 0", q, got)
		}
		if got := tree.KNNBoundedInto(q, 2, 1, nil); got != nil {
			t.Fatalf("KNNBoundedInto(%v) = %v, want nil", q, got)
		}
		if _, _, err := tree.KNNBatchFlat(q, 2); err == nil {
			t.Fatalf("KNNBatchFlat(%v) accepted", q)
		}
		if _, err := tree.KNNBatch(q, 2); err == nil {
			t.Fatalf("KNNBatch(%v) accepted", q)
		}
	}
	// Non-finite radii are rejected too (a NaN r2 disables radius pruning
	// the same way).
	if got := tree.RadiusSearch([]float32{0, 0, 0}, nan); got != nil {
		t.Fatalf("RadiusSearch(r2=NaN) = %v, want nil", got)
	}
	if got := tree.RadiusSearchInto([]float32{0, 0, 0}, inf, nil); got != nil {
		t.Fatalf("RadiusSearchInto(r2=+Inf) = %v, want nil", got)
	}
	if got := tree.CountWithin([]float32{0, 0, 0}, nan); got != 0 {
		t.Fatalf("CountWithin(r2=NaN) = %d, want 0", got)
	}

	// A batch with one NaN query among valid ones is rejected whole.
	batch := []float32{0.5, 0.5, 0.5, nan, 0.5, 0.5}
	if _, err := tree.KNNBatch(batch, 2); err == nil {
		t.Fatal("batch containing a NaN query accepted")
	}

	// Valid queries still work (the guard is not over-broad), including
	// r2 = MaxFloat32, the engine's own "unbounded" sentinel.
	if got := tree.KNN([]float32{0, 0, 0}, 2); len(got) != 2 {
		t.Fatalf("valid KNN returned %v", got)
	}
	if got := tree.RadiusSearch([]float32{0, 0, 0}, math.MaxFloat32); len(got) != 4 {
		t.Fatalf("RadiusSearch(r2=MaxFloat32) returned %d results, want 4", len(got))
	}
	if got := tree.KNNBoundedInto([]float32{0, 0, 0}, 2, math.MaxFloat32, nil); len(got) != 2 {
		t.Fatalf("KNNBoundedInto(r2=MaxFloat32) returned %v", got)
	}
}

// TestDistQueryNonFiniteRejected: the SPMD distributed query path validates
// too — a NaN query would otherwise be mis-routed by the global tree and
// silently searched with pruning disabled. Crucially the rejection is
// collective: when only ONE rank's shard carries the NaN, every rank must
// return the error in lockstep instead of the clean ranks deadlocking in
// the query collectives.
func TestDistQueryNonFiniteRejected(t *testing.T) {
	_, err := RunCluster(2, 1, func(n *Node) error {
		coords := make([]float32, 60)
		for i := range coords {
			coords[i] = float32(i%10) * 0.1
		}
		dt, err := n.Build(coords, 3, nil, nil)
		if err != nil {
			return err
		}
		// Only rank 0 queries with a NaN; rank 1's queries are valid.
		q := []float32{0.5, 0.5, 0.5}
		if n.Rank() == 0 {
			q[1] = float32(math.NaN())
		}
		if _, _, err := dt.Query(q, nil, 2); err == nil {
			t.Errorf("rank %d: distributed Query accepted a NaN wave", n.Rank())
		}
		// The cluster must still be usable for a valid wave afterwards.
		res, _, err := dt.Query([]float32{0.1, 0.2, 0.3}, nil, 2)
		if err != nil {
			return err
		}
		if len(res) != 1 || len(res[0].Neighbors) != 2 {
			t.Errorf("rank %d: valid wave after rejection returned %v", n.Rank(), res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
